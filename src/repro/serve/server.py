"""``bcache-serve`` — asyncio network front end for cache simulations.

Runs the B-Cache simulation engine as a long-lived service: an asyncio
TCP and/or Unix-domain-socket server speaking the length-prefixed JSON
protocol of :mod:`repro.serve.protocol`.  Four request ops:

* ``simulate`` — one deterministic job (spec/benchmark/side/n/seed/...);
  the response carries the full ``CacheStats.snapshot()``, bit-identical
  to a local ``access_trace`` replay of the same job.
* ``sweep`` — a list of jobs, answered order-aligned in one response.
* ``status`` — server/batcher/shard metrics (per-shard restarts and
  uptime included).
* ``metrics`` — the process metrics registry rendered in Prometheus
  text exposition format (also served over plain HTTP with
  ``--metrics-port``; see ``docs/observability.md``).
* ``drain`` — start a graceful drain (same path as SIGTERM).

Scale-out shape (the part that transfers to any serving stack):

* **Micro-batching** — concurrent jobs coalesce per shard for up to
  ``window`` seconds (:mod:`repro.serve.batcher`) and travel as one
  worker round-trip; identical jobs share one execution.
* **Sharded workers** — persistent worker processes with trace-affinity
  routing (:mod:`repro.serve.workers`), restart-on-crash, in-process
  fallback.
* **Backpressure** — layered admission control (:mod:`repro.serve.admission`):
  optional per-client token-bucket rate limiting (``rate_limited``
  responses carry ``retry_after``), optional weighted fair queueing, and
  the bounded in-flight budget: a request that would exceed
  ``max_pending`` jobs gets an ``overloaded`` error (load shedding)
  instead of unbounded queueing; oversized frames are rejected from the
  header alone.
* **Result caching** — with ``--result-cache`` a content-addressed
  result cache (:mod:`repro.serve.resultcache`) answers repeated jobs
  from memory or disk without touching a worker, and a singleflight
  layer collapses concurrent identical jobs to one execution.
* **Graceful drain** — on SIGTERM (or the ``drain`` op) the listeners
  close first (new connections are refused), in-flight requests finish
  and are answered, the batcher flushes, the shards stop, and the
  process exits 0.

Exit codes: ``0`` clean drain · ``130`` SIGINT · ``4`` bind failure.
See ``docs/serve.md`` for the protocol spec and tuning guidance.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import functools
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.runner import SweepJob, available_cpus
from repro.engine.trace_store import TraceStore, default_store
from repro.obs import events as obs_events
from repro.obs import instrument as _obs
from repro.obs import tracectx
from repro.obs.exposition import CONTENT_TYPE, render
from repro.obs.metrics import default_registry
from repro.obs.tracectx import TraceContext
from repro.serve.admission import (
    ANONYMOUS,
    AdmissionController,
    AdmissionOverload,
    RateLimited,
)
from repro.serve.batcher import MicroBatcher, SimulationError
from repro.serve.resultcache import CacheKeyError, ResultCache, Singleflight
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameTooLarge,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.workers import ShardPool

#: Fields a ``simulate`` request may set on its :class:`SweepJob`.
JOB_FIELDS = frozenset(
    {"spec", "benchmark", "side", "n", "seed", "size", "line_size", "policy",
     "with_kinds"}
)

#: Hard cap on one job's trace length (memory admission control).
MAX_TRACE_N = 2_000_000

#: Default TCP port (the paper is ISCA 2006).
DEFAULT_PORT = 4006


class BadRequest(ValueError):
    """The request payload is malformed; reported to the client."""


@dataclass(slots=True)
class ServeConfig:
    """Tuning for one :class:`SimServer`.

    Attributes:
        host/port: TCP listener (``port=0`` binds an ephemeral port;
            ``host=None`` disables TCP).
        unix_path: Unix-domain-socket listener (``None`` disables).
        shards: persistent worker process count.
        window: micro-batch gather window in seconds.
        max_batch: pending-job count that forces an immediate flush.
        max_pending: in-flight job budget; admissions beyond it are
            shed with an ``overloaded`` response.
        max_frame: frame-size cap for both directions.
        metrics_port: optional plain-HTTP listener answering ``GET
            /metrics`` with the Prometheus text exposition (``None``
            disables; ``0`` binds an ephemeral port).
        result_cache: content-addressed result cache root; ``None``
            disables the cache, ``""`` uses the default root
            (``$REPRO_RESULT_CACHE`` or ``~/.cache/bcache-repro/results``).
        cache_capacity: in-process result-cache LRU entry budget.
        rate_limit: per-client admission rate in jobs/second
            (``0`` disables rate limiting).
        rate_burst: per-client token-bucket burst (defaults to the
            rate when 0).
        fair_queue: per-client bounded wait-queue depth used when the
            in-flight budget is exhausted; ``0`` sheds immediately
            (the original behaviour).
        queue_timeout: max seconds a fairly-queued request may wait
            before being shed.
    """

    host: str | None = "127.0.0.1"
    port: int = DEFAULT_PORT
    unix_path: str | None = None
    shards: int = 2
    window: float = 0.002
    max_batch: int = 64
    max_pending: int = 256
    max_frame: int = MAX_FRAME_BYTES
    metrics_port: int | None = None
    result_cache: str | None = None
    cache_capacity: int = 4096
    rate_limit: float = 0.0
    rate_burst: float = 0.0
    fair_queue: int = 0
    queue_timeout: float = 2.0


@dataclass(slots=True)
class ServerMetrics:
    """Aggregate request counters (exported via ``status``)."""

    requests: int = 0
    simulate_requests: int = 0
    sweep_requests: int = 0
    completed: int = 0
    errors: int = 0
    shed: int = 0
    rate_limited: int = 0
    protocol_errors: int = 0
    connections_total: int = 0
    started_at: float = field(default_factory=time.monotonic)


def _job_from_payload(payload: dict[str, Any]) -> SweepJob:
    """Validate one job description and build its :class:`SweepJob`."""
    unknown = set(payload) - JOB_FIELDS
    if unknown:
        raise BadRequest(f"unknown job field(s): {', '.join(sorted(unknown))}")
    if "spec" not in payload or "benchmark" not in payload:
        raise BadRequest("job needs at least 'spec' and 'benchmark'")
    try:
        job = SweepJob(**payload)
    except TypeError as exc:
        raise BadRequest(f"bad job description: {exc}") from exc
    if not isinstance(job.spec, str) or not isinstance(job.benchmark, str):
        raise BadRequest("'spec' and 'benchmark' must be strings")
    if (isinstance(job.n, bool) or not isinstance(job.n, int)
            or not 0 < job.n <= MAX_TRACE_N):
        raise BadRequest(f"'n' must be an int in (0, {MAX_TRACE_N}]")
    # Every remaining field is type-checked too: these all feed the
    # canonical result-cache/coalescing key, which only admits exact
    # scalars — an unchecked {"seed": 1.5} would otherwise surface as
    # a CacheKeyError deep in the batcher instead of a bad_request.
    for name in ("seed", "size", "line_size"):
        value = getattr(job, name)
        if isinstance(value, bool) or not isinstance(value, int):
            raise BadRequest(f"{name!r} must be an int")
    if job.size <= 0 or job.line_size <= 0:
        raise BadRequest("'size' and 'line_size' must be positive")
    if not isinstance(job.policy, str):
        raise BadRequest("'policy' must be a string")
    if not isinstance(job.with_kinds, bool):
        raise BadRequest("'with_kinds' must be a boolean")
    if job.side not in ("data", "instr", "combined"):
        raise BadRequest(f"bad side {job.side!r}")
    if job.side == "combined" and not job.with_kinds:
        raise BadRequest("side 'combined' requires with_kinds=true")
    return job


class SimServer:
    """The asyncio simulation server (see module docstring)."""

    def __init__(self, config: ServeConfig, store: TraceStore | None = None) -> None:
        self.config = config
        self.store = store if store is not None else default_store()
        self.metrics = ServerMetrics()
        self.pool: ShardPool | None = None
        self.batcher: MicroBatcher | None = None
        self.cache: ResultCache | None = None
        self.singleflight = Singleflight()
        self.admission = AdmissionController(
            config.max_pending,
            rate=config.rate_limit,
            burst=config.rate_burst,
            queue_depth=config.fair_queue,
            queue_timeout=config.queue_timeout,
        )
        self._servers: list[asyncio.AbstractServer] = []
        self._metrics_servers: list[asyncio.AbstractServer] = []
        self._trace_seq = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._idle: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False
        self._drain_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Spawn the shards and bind every configured listener.

        Raises ``OSError`` on bind failure (port in use, bad socket
        path) — ``main`` maps that to exit code 4.
        """
        config = self.config
        if config.host is None and config.unix_path is None:
            raise ValueError("no listener configured (need host/port or unix_path)")
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        if config.result_cache is not None:
            # Building the cache fingerprints the engine sources (file
            # reads) and prunes stale generations — do it off-loop.
            loop = asyncio.get_running_loop()
            root = config.result_cache or None
            self.cache = await loop.run_in_executor(
                None,
                functools.partial(
                    ResultCache, root, capacity=config.cache_capacity
                ),
            )
            await loop.run_in_executor(None, self.cache.prune_stale)
        self.pool = ShardPool(config.shards, store=self.store, cache=self.cache)
        self.batcher = MicroBatcher(
            self.pool, window=config.window, max_batch=config.max_batch
        )
        try:
            if config.host is not None:
                self._servers.append(
                    await asyncio.start_server(
                        self._handle_connection, config.host, config.port
                    )
                )
            if config.unix_path is not None:
                self._servers.append(
                    await asyncio.start_unix_server(
                        self._handle_connection, path=config.unix_path
                    )
                )
            if config.metrics_port is not None:
                self._metrics_servers.append(
                    await asyncio.start_server(
                        self._handle_metrics_http,
                        config.host or "127.0.0.1",
                        config.metrics_port,
                    )
                )
        except OSError:
            self.abort()
            raise

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        """The bound TCP ``(host, port)`` (resolves ``port=0``)."""
        for server in self._servers:
            for sock in server.sockets or ():
                if sock.family.name in ("AF_INET", "AF_INET6"):
                    addr = sock.getsockname()
                    return (addr[0], addr[1])
        return None

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The bound ``/metrics`` HTTP ``(host, port)`` (resolves ``0``)."""
        for server in self._metrics_servers:
            for sock in server.sockets or ():
                if sock.family.name in ("AF_INET", "AF_INET6"):
                    addr = sock.getsockname()
                    return (addr[0], addr[1])
        return None

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> None:
        """Begin a graceful drain (signal-handler entry point)."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(self.drain())

    async def drain(self) -> None:
        """Refuse new connections, finish in-flight work, stop shards."""
        if self._draining:
            await self.wait_stopped()
            return
        self._draining = True
        for server in self._servers + self._metrics_servers:
            server.close()
        for server in self._servers + self._metrics_servers:
            await server.wait_closed()
        if self.config.unix_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.unix_path)
        assert self._idle is not None and self.batcher is not None
        await self._idle.wait()  # every admitted request answered
        await self.batcher.drain()
        for writer in list(self._writers):
            writer.close()
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(None, self.pool.close)
        assert self._stopped is not None
        self._stopped.set()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    def abort(self) -> None:
        """Non-graceful teardown (bind failure, Ctrl-C): drop everything."""
        for server in self._servers + self._metrics_servers:
            server.close()
        self._servers.clear()
        self._metrics_servers.clear()
        if self.config.unix_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.unix_path)
        if self.pool is not None:
            self.pool.close(timeout=1.0)
        if self._stopped is not None:
            self._stopped.set()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_total += 1
        self._writers.add(writer)
        # Default client identity: the TCP peer host (Unix sockets and
        # unnamed peers share the anonymous bucket).  A request may
        # override it with an explicit ``client`` field.
        peer = writer.get_extra_info("peername")
        client = (
            str(peer[0])
            if isinstance(peer, tuple) and len(peer) >= 2
            else ANONYMOUS
        )
        try:
            while True:
                try:
                    payload = await read_frame(reader, self.config.max_frame)
                except FrameTooLarge as exc:
                    self.metrics.protocol_errors += 1
                    with contextlib.suppress(ConnectionError):
                        await write_frame(
                            writer,
                            {"ok": False, "error": "frame_too_large",
                             "detail": str(exc)},
                            self.config.max_frame,
                        )
                    return
                except ProtocolError:
                    self.metrics.protocol_errors += 1
                    return
                if payload is None:  # clean EOF
                    return
                trace = self._trace_for(payload)
                response = await self._handle_request(payload, client, trace)
                if "id" in payload:
                    response["id"] = payload["id"]
                try:
                    with _obs.stage_span("serialize", trace=trace):
                        await write_frame(
                            writer, response, self.config.max_frame
                        )
                except ConnectionError:
                    return
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0 responder for Prometheus scrapes.

        One request per connection, ``Connection: close`` — exactly the
        shape a scraper (or ``curl``) sends.  Rendering the registry is
        pure string work, so this coroutine never blocks (BCL011).
        """
        try:
            request_line = await reader.readline()
            while True:  # drain request headers
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else "/"
            if path.split("?", 1)[0] in ("/metrics", "/"):
                status, ctype = "200 OK", CONTENT_TYPE
                body = render(default_registry()).encode("utf-8")
            else:
                status, ctype = "404 Not Found", "text/plain; charset=utf-8"
                body = b"try /metrics\n"
            head = (
                f"HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError, UnicodeDecodeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    # -- request handling ----------------------------------------------
    async def _admit(self, client: str, jobs: int) -> None:
        """Admission gate: rate limit, fair queue, in-flight budget.

        Raises :class:`RateLimited` or :class:`AdmissionOverload`; on
        return the jobs are accounted and the caller must pair with
        :meth:`_release`.
        """
        await self.admission.acquire(client, jobs)
        self._active_requests += 1
        assert self._idle is not None
        self._idle.clear()

    def _release(self, jobs: int) -> None:
        self.admission.release(jobs)
        self._active_requests -= 1
        if self._active_requests == 0:
            assert self._idle is not None
            self._idle.set()

    @staticmethod
    def _client_of(payload: dict[str, Any], fallback: str) -> str:
        """Client identity: explicit ``client`` field, else peer name."""
        client = payload.get("client")
        if isinstance(client, str) and client:
            return client
        return fallback

    def _trace_for(self, payload: dict[str, Any]) -> TraceContext | None:
        """The request's trace context: wire field, else a minted root.

        A ``trace`` field (the gateway's, or any native client's) is
        honoured on every tier — the caller already decided to trace —
        while server-minted roots only exist when events are recorded,
        so ``REPRO_OBS=off`` stays byte-identical with zero id churn.
        Minted ids hash the pid and a request ordinal: deterministic,
        no ``random``, no wall clock (rule BCL019).
        """
        if payload.get("op") not in ("simulate", "sweep"):
            return None
        trace = TraceContext.from_wire(payload.get("trace"))
        if trace is not None:
            return trace
        if not obs_events.enabled():
            return None
        self._trace_seq += 1
        return TraceContext.new(f"serve/{os.getpid()}/{self._trace_seq}")

    async def _execute(
        self, job: SweepJob, trace: TraceContext | None = None
    ) -> dict[str, Any]:
        """Run one admitted job through cache, singleflight, batcher."""
        assert self.batcher is not None
        if self.cache is None:
            return await self.batcher.submit(job, trace=trace)
        key = self.cache.key(job)
        with _obs.stage_span("resultcache", trace=trace):
            hit = self.cache.lookup_memory(key)
        if hit is not None:
            return hit
        # Collapse concurrent identical jobs before they reach the
        # batcher; the winning execution consults the disk tier and
        # writes through inside the shard pool.  Singleflight.run
        # itself counts the dedup metric for shared callers.
        with _obs.stage_span("singleflight", trace=trace):
            # Only the flight leader's submit actually runs, so its
            # batch/shard spans nest under the leader's singleflight
            # span; waiters' singleflight spans cover their shared wait.
            submit = functools.partial(
                self.batcher.submit, job, trace=tracectx.current()
            )
            snapshot, _shared = await self.singleflight.run(key, submit)
        result: dict[str, Any] = snapshot
        return result

    async def _handle_request(
        self,
        payload: dict[str, Any],
        client: str = ANONYMOUS,
        trace: TraceContext | None = None,
    ) -> dict[str, Any]:
        self.metrics.requests += 1
        op = payload.get("op")
        if trace is None:
            trace = self._trace_for(payload)
        try:
            if op == "simulate":
                with _obs.stage_span("serve_request", trace=trace,
                                     op="simulate"):
                    return await self._op_simulate(payload, client)
            if op == "sweep":
                with _obs.stage_span("serve_request", trace=trace, op="sweep"):
                    return await self._op_sweep(payload, client)
            if op == "status":
                return {"ok": True, **self.status()}
            if op == "metrics":
                return {
                    "ok": True,
                    "content_type": CONTENT_TYPE,
                    "metrics": render(default_registry()),
                }
            if op == "drain":
                self.request_drain()
                return {"ok": True, "draining": True}
            raise BadRequest(f"unknown op {op!r}")
        except (BadRequest, CacheKeyError) as exc:
            # CacheKeyError is the canonical-key layer rejecting a job
            # field _job_from_payload let through — still the client's
            # fault, so answer bad_request instead of dropping the
            # connection.
            self.metrics.errors += 1
            return {"ok": False, "error": "bad_request", "detail": str(exc)}

    def _shed_response(self, exc: Exception) -> dict[str, Any]:
        """Map an admission failure to its wire-level error response."""
        if isinstance(exc, RateLimited):
            self.metrics.rate_limited += 1
            return {"ok": False, "error": "rate_limited",
                    "retry_after": round(exc.retry_after, 3),
                    "detail": str(exc)}
        self.metrics.shed += 1
        return {"ok": False, "error": "overloaded",
                "detail": f"{exc}; retry with backoff"}

    async def _op_simulate(
        self, payload: dict[str, Any], client: str
    ) -> dict[str, Any]:
        if self._draining:
            return {"ok": False, "error": "draining"}
        job = _job_from_payload(
            {k: v for k, v in payload.items()
             if k not in ("op", "id", "client", "trace")}
        )
        trace = tracectx.current()
        try:
            with _obs.stage_span("admission", trace=trace):
                await self._admit(self._client_of(payload, client), 1)
        except (RateLimited, AdmissionOverload) as exc:
            return self._shed_response(exc)
        try:
            snapshot = await self._execute(job, trace=trace)
        except SimulationError as exc:
            self.metrics.errors += 1
            return {"ok": False, "error": "simulation_failed", "detail": str(exc)}
        finally:
            self._release(1)
        self.metrics.simulate_requests += 1
        self.metrics.completed += 1
        return {"ok": True, "stats": snapshot}

    async def _op_sweep(
        self, payload: dict[str, Any], client: str
    ) -> dict[str, Any]:
        if self._draining:
            return {"ok": False, "error": "draining"}
        raw_jobs = payload.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise BadRequest("'sweep' needs a non-empty 'jobs' list")
        jobs = [
            _job_from_payload(entry) if isinstance(entry, dict)
            else self._reject_job(entry)
            for entry in raw_jobs
        ]
        trace = tracectx.current()
        try:
            with _obs.stage_span("admission", trace=trace):
                await self._admit(self._client_of(payload, client), len(jobs))
        except (RateLimited, AdmissionOverload) as exc:
            return self._shed_response(exc)
        try:
            outcomes = await asyncio.gather(
                *(self._execute(job, trace=trace) for job in jobs),
                return_exceptions=True,
            )
        finally:
            self._release(len(jobs))
        results: list[dict[str, Any]] = []
        for outcome in outcomes:
            if isinstance(outcome, SimulationError):
                self.metrics.errors += 1
                results.append(
                    {"ok": False, "error": "simulation_failed",
                     "detail": str(outcome)}
                )
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                results.append({"ok": True, "stats": outcome})
        self.metrics.sweep_requests += 1
        self.metrics.completed += 1
        return {"ok": True, "results": results}

    @staticmethod
    def _reject_job(entry: Any) -> SweepJob:
        raise BadRequest(f"sweep jobs must be objects, got {type(entry).__name__}")

    # -- introspection -------------------------------------------------
    def status(self) -> dict[str, Any]:
        """The ``status`` response body (also handy in-process).

        Per-shard entries carry ``restarts`` and ``uptime_s`` so a
        single crash-looping shard is visible instead of hiding inside
        an aggregate; restart counts come from the obs registry (the
        same series ``/metrics`` exports as
        ``repro_serve_shard_restarts_total``).
        """
        metrics = self.metrics
        assert self.batcher is not None and self.pool is not None
        shards = self.pool.snapshot()
        restart_counter = default_registry().counter(
            "repro_serve_shard_restarts_total",
            "Shard worker processes restarted after a crash or timeout",
        )
        for shard_id, entry in enumerate(shards):
            entry["restarts"] = int(restart_counter.value(shard=str(shard_id)))
        return {
            "server": {
                "draining": self._draining,
                "protocol_version": PROTOCOL_VERSION,
                "cpus_usable": available_cpus(),
                "uptime_s": round(time.monotonic() - metrics.started_at, 3),
                "connections_total": metrics.connections_total,
                "requests": metrics.requests,
                "simulate_requests": metrics.simulate_requests,
                "sweep_requests": metrics.sweep_requests,
                "completed": metrics.completed,
                "errors": metrics.errors,
                "shed": metrics.shed,
                "rate_limited": metrics.rate_limited,
                "protocol_errors": metrics.protocol_errors,
                "inflight_jobs": self.admission.inflight,
                "max_pending": self.config.max_pending,
                "singleflight_leaders": self.singleflight.leaders,
                "singleflight_waits": self.singleflight.waits,
                "fallback_batches": self.pool.fallback_batches,
                "shard_restarts_total": int(restart_counter.total()),
            },
            "batcher": self.batcher.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "resultcache": (
                self.cache.snapshot() if self.cache is not None else None
            ),
            "shards": shards,
        }


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bcache-serve",
        description="Serve cache simulations over TCP / Unix sockets "
        "(micro-batching, sharded workers, backpressure).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None, metavar="N",
                        help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral; "
                        "omit with --unix to disable TCP)")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="also (or only) listen on this Unix socket path")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="worker processes (default: usable CPUs, "
                        "honouring the scheduler affinity mask)")
    parser.add_argument("--window-ms", type=float, default=2.0, metavar="MS",
                        help="micro-batch gather window (default 2.0 ms)")
    parser.add_argument("--max-batch", type=int, default=64, metavar="N",
                        help="flush a shard's pending set at this many "
                        "distinct jobs (default 64)")
    parser.add_argument("--max-pending", type=int, default=256, metavar="N",
                        help="in-flight job budget before load shedding "
                        "(default 256)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="trace-store root (default $REPRO_TRACE_STORE "
                        "or ~/.cache/bcache-repro/traces)")
    parser.add_argument("--metrics-port", type=int, default=None, metavar="N",
                        help="serve GET /metrics (Prometheus text format) "
                        "over plain HTTP on this port (0 = ephemeral; "
                        "default: disabled)")
    parser.add_argument("--result-cache", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="enable the content-addressed result cache; "
                        "optional DIR overrides the default root "
                        "($REPRO_RESULT_CACHE or "
                        "~/.cache/bcache-repro/results)")
    parser.add_argument("--cache-capacity", type=int, default=4096,
                        metavar="N",
                        help="in-process result-cache LRU entries "
                        "(default 4096)")
    parser.add_argument("--rate-limit", type=float, default=0.0, metavar="R",
                        help="per-client admission rate in jobs/second "
                        "(default 0 = unlimited)")
    parser.add_argument("--rate-burst", type=float, default=0.0, metavar="B",
                        help="per-client token-bucket burst "
                        "(default: the rate)")
    parser.add_argument("--fair-queue", type=int, default=0, metavar="N",
                        help="per-client fair wait-queue depth when the "
                        "in-flight budget is exhausted (default 0 = shed "
                        "immediately)")
    parser.add_argument("--queue-timeout", type=float, default=2.0,
                        metavar="S",
                        help="max seconds a fairly-queued request may wait "
                        "(default 2.0)")
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    tcp_enabled = args.port is not None or args.unix is None
    return ServeConfig(
        host=args.host if tcp_enabled else None,
        port=args.port if args.port is not None else DEFAULT_PORT,
        unix_path=args.unix,
        shards=args.shards if args.shards is not None else available_cpus(),
        window=max(0.0, args.window_ms) / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        metrics_port=args.metrics_port,
        result_cache=args.result_cache,
        cache_capacity=args.cache_capacity,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        fair_queue=args.fair_queue,
        queue_timeout=args.queue_timeout,
    )


async def _amain(config: ServeConfig, store: TraceStore | None) -> int:
    server = SimServer(config, store=store)
    try:
        await server.start()
    except OSError as exc:
        print(f"bcache-serve: cannot bind: {exc}", file=sys.stderr)
        return 4
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, server.request_drain)
    tcp = server.tcp_address
    tcp_text = f"{tcp[0]}:{tcp[1]}" if tcp else "-"
    http = server.metrics_address
    metrics_text = f"{http[0]}:{http[1]}" if http else "-"
    print(
        f"bcache-serve: ready tcp={tcp_text} unix={config.unix_path or '-'} "
        f"metrics={metrics_text} shards={config.shards} "
        f"window_ms={config.window * 1000:g} "
        f"max_pending={config.max_pending} "
        f"cache={'on' if config.result_cache is not None else 'off'} "
        f"rate={config.rate_limit:g} pid={os.getpid()}",
        flush=True,
    )
    try:
        await server.wait_stopped()
    finally:
        server.abort()
    print("bcache-serve: drained, exiting", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-serve``; returns a process exit code.

    ``0`` after a clean drain (SIGTERM or the ``drain`` op), ``130`` on
    SIGINT, ``4`` when a listener cannot bind, ``2`` for bad usage.
    """
    args = _build_parser().parse_args(argv)
    if args.shards is not None and args.shards < 1:
        print("bcache-serve: --shards must be >= 1", file=sys.stderr)
        return 2
    config = config_from_args(args)
    store = TraceStore(args.store) if args.store else None
    try:
        return asyncio.run(_amain(config, store))
    except KeyboardInterrupt:
        print("bcache-serve: interrupted (SIGINT); workers are daemons and "
              "die with this process", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
