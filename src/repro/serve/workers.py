"""Sharded, persistent simulation worker processes for the server.

The batch engine (:mod:`repro.engine.runner`) forks a fresh pool per
sweep — fine for a CLI, wasteful for a long-lived service.  This module
keeps ``shards`` worker processes alive for the server's whole life,
each one running the exact :func:`repro.engine.runner.execute_job`
code path the CLI tools use (which is what keeps served statistics
bit-identical to a local ``access_trace`` replay), with its process-wide
:class:`~repro.engine.trace_store.TraceStore` pointed at the server's
store root — the same initializer contract as the sweep pool.

Jobs are routed to shards by **trace affinity**: every job replaying
the same ``(benchmark, side, n, seed)`` stream lands on the same shard,
so that shard's in-memory trace LRU stays hot and a 26-benchmark
workload does not thrash every worker's memory.

A shard that dies (OOM kill, crash) is restarted with the bounded
backoff of :class:`repro.engine.resilience.RetryPolicy`; if it dies
again on the same batch the pool degrades to running that batch
in-process — the same never-abandon-the-work stance as the resilient
sweep supervisor, scaled down to one batch.

Parent-side pipe round-trips are blocking by design and therefore run
on the pool's private thread executor via
:meth:`ShardPool.run_batch` — never on the event loop (rule BCL011).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from random import Random
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any, Sequence

from repro.engine.resilience import RetryPolicy
from repro.engine.runner import SweepJob, execute_job
from repro.engine.shm import Manifest, SharedTraceRegistry, TraceKey, trace_key
from repro.engine.trace_store import TraceStore, default_store, set_default_store
from repro.obs import events as obs_events
from repro.obs import instrument as _obs
from repro.obs.metrics import default_registry
from repro.obs.tracectx import TraceContext

if TYPE_CHECKING:  # annotation only; the pool works without a cache
    from repro.serve.resultcache import ResultCache

#: One batch result entry: ``("ok", snapshot)`` or ``("error", message)``.
ShardResult = tuple[str, Any]


def _shard_entry(
    conn: Connection, store_root: str, obs_mode: str = "off", obs_log: str = ""
) -> None:
    """Worker process: serve ``("batch", [job dicts])`` until ``("stop",)``.

    Every job runs through :func:`execute_job` — the single execution
    path shared with the sweep runner and the serial harness — so a
    served simulation is bit-identical to a local replay.

    Batches may carry a third element: a shared-memory manifest delta
    naming trace segments the parent exported since the last batch.
    The worker's store adopts each delta and attaches zero-copy instead
    of re-reading blobs from disk; two-element batches (the pre-shm
    protocol) are still accepted.

    Each response is ``(results, metric deltas, span deltas)``: under
    ``REPRO_OBS=full`` the worker drains its process-local registry
    (engine job counts, trace-store hits, kernel timings) after every
    batch and the parent merges the deltas into the server registry,
    so ``/metrics`` covers the workers, not just the parent process.

    Batches may also carry a fourth element: per-job trace contexts
    (``traceparent`` strings or ``None``, aligned with the payloads).
    A traced job's ``execute_job`` call is timed into a ``kernel``
    stage-span record — built *here*, with this process's clocks and
    pid — and the records travel back as the span deltas, which the
    parent replays into its event log (mirroring the metric-delta
    path).  Span records are never written locally, so a batch that is
    retried after a worker crash contributes its spans exactly once:
    with whichever worker's response the parent actually received.
    """
    store = TraceStore(store_root, fsync=False)
    set_default_store(store)
    if obs_mode != "off" and obs_log:
        obs_events.configure(mode=obs_mode, log_path=obs_log)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(message, tuple) or message[0] == "stop":
            break
        if len(message) >= 3:
            store.adopt_manifest(message[2])
        traces: Sequence[str | None] = (
            message[3] if len(message) >= 4 else []
        )
        results: list[ShardResult] = []
        span_deltas: list[dict[str, Any]] = []
        for index, payload in enumerate(message[1]):
            wire = traces[index] if index < len(traces) else None
            ctx = TraceContext.from_wire(wire) if wire else None
            started = time.monotonic()
            try:
                stats = execute_job(SweepJob(**payload))
            except Exception as exc:
                results.append(("error", f"{type(exc).__name__}: {exc}"))
            else:
                results.append(("ok", stats.snapshot()))
            if ctx is not None and ctx.sampled and obs_events.enabled():
                span_deltas.append(_obs.stage_record(
                    "kernel", ctx, time.monotonic() - started,
                    benchmark=payload.get("benchmark", ""),
                ))
        deltas = (
            default_registry().drain_deltas()
            if obs_events.metrics_enabled()
            else []
        )
        try:
            conn.send((results, deltas, span_deltas))
        except (OSError, BrokenPipeError):
            break
    store.release_shared()  # detach segments before the owner unlinks them
    with contextlib.suppress(OSError):
        conn.close()


@dataclass(slots=True)
class _Shard:
    """Parent-side handle for one worker process."""

    proc: multiprocessing.process.BaseProcess
    conn: Any
    started_mono: float = 0.0
    batches: int = 0
    jobs: int = 0
    restarts: int = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "pid": self.proc.pid,
            "alive": self.proc.is_alive(),
            "uptime_s": round(max(0.0, time.monotonic() - self.started_mono), 3),
            "batches": self.batches,
            "jobs": self.jobs,
            "restarts": self.restarts,
        }


def trace_shard_key(job: SweepJob) -> int:
    """Stable hash of the job's trace identity (not its cache spec)."""
    identity = f"{job.benchmark}|{job.side}|{job.n}|{job.seed}|{job.with_kinds}"
    return zlib.crc32(identity.encode())


class ShardPool:
    """``shards`` persistent worker processes with affinity routing.

    Args:
        shards: worker process count (>= 1).
        store: trace store whose root the workers share (defaults to
            the process-wide store).
        retry: restart backoff for dead shards; after its attempts are
            exhausted the batch runs in-process instead of failing.
        seed: seed for the (deterministic) backoff jitter.
        cache: optional :class:`~repro.serve.resultcache.ResultCache`;
            when set, every batch consults it before the pipe round
            trip (cached jobs never reach a worker) and fresh results
            are written through.  Lookups and writes happen on the
            pool's ``shard-io`` executor threads, never the event loop.
    """

    def __init__(
        self,
        shards: int,
        store: TraceStore | None = None,
        retry: RetryPolicy = RetryPolicy(max_attempts=2, base_delay=0.05),
        seed: int = 2006,
        cache: "ResultCache | None" = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.store = store if store is not None else default_store()
        self.retry = retry
        self.cache = cache
        self._rng = Random(seed)
        self._ctx = multiprocessing.get_context()
        self._registry = SharedTraceRegistry()
        self._shards = [self._spawn() for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]
        # Trace keys each shard has already been handed a segment name
        # for; guarded by the matching per-shard lock, reset on restart.
        self._sent_keys: list[set[TraceKey]] = [set() for _ in range(shards)]
        self._inflight = [0] * shards
        self._executor = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="shard-io"
        )
        self._closed = False
        self.fallback_batches = 0

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> _Shard:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_entry,
            args=(
                child_conn,
                str(self.store.root),
                obs_events.mode(),
                str(obs_events.active_log_path()),
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Shard(proc=proc, conn=parent_conn, started_mono=time.monotonic())

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (idempotent); kills stragglers."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            with contextlib.suppress(OSError, BrokenPipeError, ValueError):
                shard.conn.send(("stop",))
        for shard in self._shards:
            shard.proc.join(timeout=timeout)
            if shard.proc.is_alive():
                shard.proc.kill()
                shard.proc.join(timeout=timeout)
            with contextlib.suppress(OSError, ValueError):
                shard.conn.close()
        self._executor.shutdown(wait=False)
        self._registry.unlink_all()

    # -- routing -------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._shards)

    def shard_of(self, job: SweepJob) -> int:
        """Shard index for ``job`` (trace-affinity routing)."""
        return trace_shard_key(job) % len(self._shards)

    # -- execution -----------------------------------------------------
    async def run_batch(
        self,
        shard_id: int,
        jobs: Sequence[SweepJob],
        traces: Sequence[str | None] | None = None,
    ) -> list[ShardResult]:
        """Run one batch on one shard without blocking the event loop.

        ``traces`` (aligned with ``jobs``) carries per-job trace
        contexts in wire form; a traced job's kernel execution comes
        back as a span delta and lands in the parent's event log.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._roundtrip, shard_id, list(jobs),
            list(traces) if traces is not None else None,
        )

    def run_batch_blocking(
        self,
        shard_id: int,
        jobs: Sequence[SweepJob],
        traces: Sequence[str | None] | None = None,
    ) -> list[ShardResult]:
        """Synchronous batch execution (tests and the drain path)."""
        return self._roundtrip(
            shard_id, list(jobs),
            list(traces) if traces is not None else None,
        )

    def _roundtrip(
        self,
        shard_id: int,
        jobs: list[SweepJob],
        traces: list[str | None] | None = None,
    ) -> list[ShardResult]:
        """One batch: result-cache filter, then the shard round trip.

        Runs on a ``shard-io`` executor thread (so the cache's
        synchronous disk tier is fine here).  With a cache attached,
        jobs it can answer never reach the worker pipe; the remainder
        execute and are written through.
        """
        cache = self.cache
        if cache is None:
            return self._dispatch(shard_id, jobs, traces)
        results: list[ShardResult | None] = [None] * len(jobs)
        misses: list[int] = []
        for index, job in enumerate(jobs):
            snapshot = cache.get(job)
            if snapshot is not None:
                results[index] = ("ok", snapshot)
            else:
                misses.append(index)
        if misses:
            fresh = self._dispatch(
                shard_id,
                [jobs[i] for i in misses],
                [traces[i] for i in misses] if traces is not None else None,
            )
            for index, outcome in zip(misses, fresh):
                results[index] = outcome
                status, payload = outcome
                if status == "ok":
                    cache.put(jobs[index], payload)
        merged: list[ShardResult] = []
        for entry in results:
            assert entry is not None  # every index is cached or dispatched
            merged.append(entry)
        return merged

    def _dispatch(
        self,
        shard_id: int,
        jobs: list[SweepJob],
        traces: list[str | None] | None = None,
    ) -> list[ShardResult]:
        """Send one batch to a shard and wait for its results.

        Runs on a ``shard-io`` executor thread; the per-shard lock keeps
        request/response pairs on the pipe strictly alternating.
        """
        payloads = [asdict(job) for job in jobs]
        if traces is not None and not any(traces):
            traces = None  # untraced batch: keep the 3-element message
        self._inflight[shard_id] += 1
        _obs.serve_queue_depth(shard_id, self._inflight[shard_id])
        try:
            with self._locks[shard_id]:
                for attempt in range(self.retry.max_attempts):
                    if self._closed:
                        break
                    shard = self._shards[shard_id]
                    delta = self._manifest_delta(shard_id, jobs)
                    try:
                        if traces is not None:
                            shard.conn.send(("batch", payloads, delta, traces))
                        else:
                            shard.conn.send(("batch", payloads, delta))
                        response = shard.conn.recv()
                    except (EOFError, OSError, BrokenPipeError):
                        self._restart(shard_id, attempt)
                        continue
                    self._sent_keys[shard_id].update(delta)
                    results, deltas, span_deltas = self._split_response(response)
                    if isinstance(results, list) and len(results) == len(jobs):
                        if deltas:
                            default_registry().merge_deltas(deltas)
                        # Replay worker span records only once the
                        # response is accepted: a retried batch merges
                        # the spans of the attempt that answered, never
                        # both (no drop, no double-merge).
                        for record in span_deltas:
                            obs_events.emit_raw(record)
                        shard.batches += 1
                        shard.jobs += len(jobs)
                        return results
                    self._restart(shard_id, attempt)
                # Degraded mode: the shard keeps dying on this batch —
                # run it here rather than failing the callers (mirrors
                # the resilient sweep supervisor's serial fallback).
                self.fallback_batches += 1
                _obs.serve_fallback_batch(shard_id)
                return [self._run_local(job) for job in jobs]
        finally:
            self._inflight[shard_id] -= 1
            _obs.serve_queue_depth(shard_id, self._inflight[shard_id])

    def _manifest_delta(self, shard_id: int, jobs: Sequence[SweepJob]) -> Manifest:
        """Segment entries this batch needs that the shard has not seen.

        Traces are exported lazily, on the first batch that replays
        them; affinity routing means each trace is usually exported
        once and then named to exactly one shard.  Runs under the
        shard's lock (the caller holds it).
        """
        delta: Manifest = {}
        manifest = self._registry.manifest()
        sent = self._sent_keys[shard_id]
        for job in jobs:
            key = trace_key(job.benchmark, job.side, job.n, job.seed, job.with_kinds)
            if key in sent or key in delta:
                continue
            entry = manifest.get(key)
            if entry is None:
                try:
                    entry = self._registry.export(
                        self.store, job.benchmark, job.side,
                        job.n, job.seed, job.with_kinds,
                    )
                except (OSError, ValueError):
                    continue  # shm unavailable: the worker reads from disk
            delta[key] = entry
        return delta

    @staticmethod
    def _split_response(response: Any) -> tuple[Any, list, list]:
        """``(results, metric deltas, span deltas)`` from a shard response.

        Current workers answer the 3-tuple; the 2-tuple
        ``(results, metric deltas)`` and a plain ``list`` (the two
        earlier protocols) are still accepted so a parent can drain a
        worker started by an older build.
        """
        if (
            isinstance(response, tuple)
            and len(response) in (2, 3)
            and isinstance(response[1], list)
        ):
            spans = (
                response[2]
                if len(response) == 3 and isinstance(response[2], list)
                else []
            )
            return response[0], response[1], spans
        return response, [], []

    def _restart(self, shard_id: int, attempt: int) -> None:
        """Replace a dead shard process after a deterministic backoff."""
        shard = self._shards[shard_id]
        with contextlib.suppress(OSError, ValueError):
            shard.conn.close()
        if shard.proc.is_alive():
            shard.proc.kill()
        shard.proc.join(timeout=5.0)
        if self._closed:
            return
        time.sleep(self.retry.delay(attempt, self._rng))
        replacement = self._spawn()
        replacement.batches = shard.batches
        replacement.jobs = shard.jobs
        replacement.restarts = shard.restarts + 1
        self._shards[shard_id] = replacement
        self._sent_keys[shard_id].clear()  # fresh worker, no attachments
        _obs.serve_shard_restarted(shard_id)

    def _run_local(self, job: SweepJob) -> ShardResult:
        try:
            stats = execute_job(job, store=self.store)
        except Exception as exc:
            return ("error", f"{type(exc).__name__}: {exc}")
        return ("ok", stats.snapshot())

    # -- introspection -------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """Per-shard metrics for the ``status`` response."""
        return [shard.snapshot() for shard in self._shards]

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
