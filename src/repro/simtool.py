"""``bcache-sim`` — Dinero-style trace-driven simulator front end.

Runs a trace (a ``.din``/``.txt``/binary file or a built-in synthetic
benchmark) through one or more cache configurations and prints the
statistics, making the library usable as a drop-in miss-rate tool:

    bcache-sim --trace app.din dm 4way mf8_bas8
    bcache-sim --benchmark equake --side data --n 200000 dm mf8_bas8
    bcache-sim --benchmark gcc --side instr mf8_bas8 --balance
    bcache-sim --benchmark gcc --jobs 4 dm 2way 4way 8way mf8_bas8
    bcache-sim --benchmark gcc --connect 127.0.0.1:4006 dm mf8_bas8

Traces are replayed through the batch :meth:`Cache.access_trace` fast
path: trace files stream straight into compact ``array`` blobs and
synthetic benchmarks come from the on-disk trace store, so nothing
materialises a per-access object list.  ``--jobs N`` fans the specs of
a benchmark run across processes with bit-identical statistics (see
``docs/engine.md``).  ``--connect ADDR`` runs benchmark specs on a
remote ``bcache-serve`` instance instead — same statistics, shared
warm trace store (see ``docs/serve.md``).
"""

from __future__ import annotations

import argparse
import sys
from array import array
from typing import Sequence

from repro.caches import make_cache
from repro.engine.runner import SweepJob, default_jobs, run_sweep
from repro.engine.trace_store import default_store
from repro.obs import events as obs_events
from repro.stats.balance import analyze_balance
from repro.stats.counters import CacheStats
from repro.trace.trace_file import stream_trace
from repro.workloads.spec2k import ALL_BENCHMARKS


def _load_accesses(
    args: argparse.Namespace,
) -> tuple[Sequence[int], Sequence[int]]:
    """The reference stream as parallel (address, kind) columns.

    Trace files are streamed record-by-record into ``array`` columns
    (constant memory, no ``list[Access]``); synthetic benchmarks get
    the trace store's read-only ``uint64``/``uint8`` memoryviews.
    """
    if args.trace:
        addresses = array("Q")
        kinds = array("B")
        for access in stream_trace(args.trace):
            addresses.append(access.address)
            kinds.append(int(access.kind))
        return addresses, kinds
    return default_store().accesses(args.benchmark, args.side, args.n, args.seed)


def _simulate_one(
    spec: str,
    args: argparse.Namespace,
    addresses: Sequence[int],
    kinds: Sequence[int],
) -> CacheStats:
    """Replay the stream through one spec in this process."""
    cache = make_cache(
        spec, size=args.size, line_size=args.line, policy=args.policy
    )
    if args.sanitize:
        from repro.analysis.sanitizer import SanitizedCache, strict_capable

        checked = SanitizedCache(
            cache, strict=strict_capable(cache), check_interval=1024
        )
        checked.access_trace(addresses, kinds)
        checked.finalize()
        return cache.stats
    cache.access_trace(addresses, kinds)
    return cache.stats


def _run_specs(
    args: argparse.Namespace, addresses: Sequence[int], kinds: Sequence[int]
) -> tuple[dict[str, CacheStats], dict[str, str], int]:
    """Run every spec; returns (stats by spec, errors by spec, status).

    Benchmark runs with ``--jobs > 1`` go through the process-pool
    sweep runner (each worker loads the same stored trace); trace-file
    and ``--sanitize`` runs stay serial.  ``--run-id``/``--inject-faults``
    route benchmark runs through the crash-safe resilient engine
    (retries, timeouts, durable journal — see ``docs/engine.md``).
    """
    results: dict[str, CacheStats] = {}
    errors: dict[str, str] = {}
    status = 0

    valid_specs = []
    for spec in args.specs:
        try:
            make_cache(spec, size=args.size, line_size=args.line, policy=args.policy)
        except ValueError as exc:
            errors[spec] = f"error: {exc}"
            status = 2
        else:
            valid_specs.append(spec)

    if getattr(args, "connect", None):
        from repro.serve.client import ServeClient, ServeError

        sweep = [
            SweepJob(
                spec=spec,
                benchmark=args.benchmark,
                side=args.side,
                n=args.n,
                seed=args.seed,
                size=args.size,
                line_size=args.line,
                policy=args.policy,
                with_kinds=True,
            )
            for spec in valid_specs
        ]
        if "," in args.connect:
            # Comma-separated fleet: route through the fault-tolerant
            # cluster coordinator (work-stealing, failover, local
            # fallback) — same bit-identical statistics contract.
            from repro.engine.cluster import run_cluster_sweep

            swept = run_cluster_sweep(sweep, args.connect.split(","))
            for spec, stats in zip(valid_specs, swept):
                results[spec] = stats
            return results, errors, status
        try:
            with ServeClient.connect(args.connect) as client:
                swept = client.sweep(sweep)
        except ServeError as exc:
            print(f"bcache-sim: server error: {exc}", file=sys.stderr)
            for spec in valid_specs:
                errors.setdefault(spec, f"server error: {exc.code}")
            return results, errors, 4
        except OSError as exc:
            print(
                f"bcache-sim: cannot reach {args.connect}: {exc}",
                file=sys.stderr,
            )
            for spec in valid_specs:
                errors.setdefault(spec, "server unreachable")
            return results, errors, 4
        for spec, stats in zip(valid_specs, swept):
            results[spec] = stats
        return results, errors, status

    fault_plan = getattr(args, "fault_plan", None)
    resilient = bool(args.run_id or fault_plan)
    parallel = args.jobs > 1 and len(valid_specs) > 1
    if parallel and not resilient and (args.trace or args.sanitize):
        reason = "--sanitize replays serially" if args.sanitize else (
            "trace files are not in the trace store"
        )
        print(f"bcache-sim: {reason}; running with --jobs 1", file=sys.stderr)
        parallel = False

    if resilient or parallel:
        sweep = [
            SweepJob(
                spec=spec,
                benchmark=args.benchmark,
                side=args.side,
                n=args.n,
                seed=args.seed,
                size=args.size,
                line_size=args.line,
                policy=args.policy,
                with_kinds=True,
            )
            for spec in valid_specs
        ]
        if resilient:
            from repro.engine.resilience import SweepFailure

            try:
                swept = run_sweep(
                    sweep,
                    workers=args.jobs,
                    sanitize=args.sanitize,
                    run_id=args.run_id,
                    fault_plan=fault_plan,
                )
            except SweepFailure as exc:
                print(f"bcache-sim: sweep failed: {exc}", file=sys.stderr)
                for spec in valid_specs:
                    errors.setdefault(spec, "sweep failed (see stderr)")
                return results, errors, 4
        else:
            swept = run_sweep(sweep, workers=args.jobs)
        for spec, stats in zip(valid_specs, swept):
            results[spec] = stats
        return results, errors, status

    for spec in valid_specs:
        try:
            results[spec] = _simulate_one(spec, args, addresses, kinds)
        except AssertionError as exc:
            errors[spec] = f"sanitizer violation: {exc}"
            status = 3
    return results, errors, status


def _run_json(
    args: argparse.Namespace, addresses: Sequence[int], kinds: Sequence[int]
) -> int:
    """Run all specs and dump one JSON document to stdout."""
    import json

    length = args.n if getattr(args, "connect", None) else len(addresses)
    output = {"trace_length": length, "configs": {}}
    results, errors, status = _run_specs(args, addresses, kinds)
    for spec in args.specs:
        if spec in errors:
            print(f"{spec}: {errors[spec]}", file=sys.stderr)
            continue
        stats = results[spec]
        entry = stats.as_dict()
        if args.balance:
            report = analyze_balance(stats)
            entry["balance"] = {
                "frequent_hit_sets": report.frequent_hit_sets,
                "frequent_hit_share": report.frequent_hit_share,
                "frequent_miss_sets": report.frequent_miss_sets,
                "frequent_miss_share": report.frequent_miss_share,
                "less_accessed_sets": report.less_accessed_sets,
                "less_accessed_share": report.less_accessed_share,
            }
        output["configs"][spec] = entry
    print(json.dumps(output, indent=2))
    return status


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-sim``; returns a process exit code.

    Ctrl-C is handled here once for every execution mode: the sweep
    runner terminates and reaps its worker pool (no orphan processes,
    no half-written journal — records are atomic appends) before the
    interrupt reaches this handler, which reports and exits 130.
    """
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print(
            "\nbcache-sim: interrupted — workers terminated and reaped; "
            "with --run-id, completed jobs stay journaled and the run "
            "resumes with the same id",
            file=sys.stderr,
        )
        return 130


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bcache-sim",
        description="Trace-driven cache simulator (B-Cache reproduction).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", help="trace file (.din/.txt text or binary)")
    source.add_argument(
        "--benchmark",
        choices=ALL_BENCHMARKS,
        help="built-in synthetic SPEC2K benchmark",
    )
    parser.add_argument(
        "--side",
        choices=("data", "instr", "combined"),
        default="data",
        help="which reference stream of the benchmark (default: data)",
    )
    parser.add_argument("--n", type=int, default=200_000,
                        help="trace length for synthetic benchmarks")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--size", type=int, default=16 * 1024,
                        help="cache size in bytes (default 16384)")
    parser.add_argument("--line", type=int, default=32,
                        help="line size in bytes (default 32)")
    parser.add_argument("--policy", default="lru",
                        help="replacement policy where applicable")
    parser.add_argument("--jobs", type=int, default=default_jobs(),
                        help="worker processes for benchmark runs with "
                        "several specs (default $REPRO_JOBS or 1); results "
                        "are bit-identical to a serial run")
    parser.add_argument("--balance", action="store_true",
                        help="also print the Table 7 balance classification")
    parser.add_argument("--sanitize", action="store_true",
                        help="shadow-check every access with the runtime "
                        "sanitizer (see docs/analysis.md); exit 3 on any "
                        "invariant violation")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of the table")
    parser.add_argument("--connect", default=None, metavar="ADDR",
                        help="run benchmark specs on a bcache-serve instance "
                        "(host:port or unix:/path.sock) instead of locally; "
                        "a comma-separated list sweeps the fleet through "
                        "the fault-tolerant cluster coordinator (see "
                        "docs/serve.md and docs/cluster.md); statistics "
                        "are bit-identical either way")
    parser.add_argument("--run-id", default=None, metavar="ID",
                        help="journal benchmark results durably under this "
                        "id and resume a killed run bit-identically "
                        "($REPRO_RUN_ROOT or ~/.cache/bcache-repro/runs)")
    parser.add_argument("--inject-faults", default=None, metavar="PLAN",
                        help="deterministic fault-plan DSL for chaos "
                        "testing, e.g. 'crash@0,hang@1,corrupt_blob@2' "
                        "(kind@job[:attempt]; see docs/engine.md)")
    parser.add_argument("--obs-log", default=None, metavar="PATH",
                        help="write telemetry events (spans, job lifecycle, "
                        "kernel timings) to PATH; enables the events tier "
                        "if REPRO_OBS is off (see docs/observability.md)")
    parser.add_argument("specs", nargs="+",
                        help="cache specs, e.g. dm 4way victim16 mf8_bas8")
    args = parser.parse_args(argv)

    if args.obs_log:
        obs_events.configure(
            mode="full" if obs_events.metrics_enabled() else "events",
            log_path=args.obs_log,
        )

    if args.connect:
        if args.trace:
            print(
                "bcache-sim: --connect needs --benchmark runs (the server "
                "replays from its own trace store)",
                file=sys.stderr,
            )
            return 2
        if args.sanitize or args.run_id or args.inject_faults:
            print(
                "bcache-sim: --connect is incompatible with --sanitize/"
                "--run-id/--inject-faults (those run locally)",
                file=sys.stderr,
            )
            return 2

    args.fault_plan = None
    if args.inject_faults or args.run_id:
        if args.trace:
            print(
                "bcache-sim: --run-id/--inject-faults need --benchmark runs "
                "(trace files are not in the trace store)",
                file=sys.stderr,
            )
            return 2
        if args.inject_faults:
            from repro.engine.faultinject import FaultPlan, FaultPlanError

            try:
                args.fault_plan = FaultPlan.parse(args.inject_faults)
            except FaultPlanError as exc:
                print(f"bcache-sim: bad --inject-faults: {exc}", file=sys.stderr)
                return 2

    if args.connect:
        # The server replays from its own (warm) trace store; don't
        # generate or load the trace locally just to count it.
        addresses, kinds = array("Q"), array("B")
    else:
        try:
            addresses, kinds = _load_accesses(args)
        except (OSError, KeyError, ValueError) as exc:
            print(f"error loading trace: {exc}", file=sys.stderr)
            return 1

    if args.json:
        return _run_json(args, addresses, kinds)

    if args.connect:
        print(f"trace: {args.n} accesses (served by {args.connect})")
    else:
        print(f"trace: {len(addresses)} accesses")
    header = (
        f"{'config':<12} {'miss rate':>10} {'hits':>9} {'misses':>8} "
        f"{'evict':>7} {'wb':>6} {'PDhit@miss':>11}"
    )
    print(header)
    print("-" * len(header))
    results, errors, status = _run_specs(args, addresses, kinds)
    for spec in args.specs:
        if spec in errors:
            print(f"{spec:<12} {errors[spec]}", file=sys.stderr)
            continue
        stats = results[spec]
        pd = (
            f"{stats.pd_hit_rate_during_miss:>10.1%}"
            if spec.startswith("mf")
            else f"{'-':>10}"
        )
        print(
            f"{spec:<12} {stats.miss_rate:>9.3%} {stats.hits:>9} "
            f"{stats.misses:>8} {stats.evictions:>7} {stats.writebacks:>6} {pd}"
        )
        if args.balance:
            report = analyze_balance(stats)
            fhs, ch, fms, cm, las, tca = report.as_percent_row()
            print(
                f"{'':12} balance: fhs {fhs:.1f}% hold {ch:.1f}% of hits; "
                f"fms {fms:.1f}% hold {cm:.1f}% of misses; "
                f"las {las:.1f}% get {tca:.1f}% of accesses"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
