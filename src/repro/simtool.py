"""``bcache-sim`` — Dinero-style trace-driven simulator front end.

Runs a trace (a ``.din``/``.txt``/binary file or a built-in synthetic
benchmark) through one or more cache configurations and prints the
statistics, making the library usable as a drop-in miss-rate tool:

    bcache-sim --trace app.din dm 4way mf8_bas8
    bcache-sim --benchmark equake --side data --n 200000 dm mf8_bas8
    bcache-sim --benchmark gcc --side instr mf8_bas8 --balance
"""

from __future__ import annotations

import argparse
import sys

from repro.caches import make_cache
from repro.stats.balance import analyze_balance
from repro.trace.trace_file import load_trace
from repro.workloads.spec2k import ALL_BENCHMARKS, get_profile


def _load_accesses(args: argparse.Namespace) -> list:
    if args.trace:
        return load_trace(args.trace)
    profile = get_profile(args.benchmark)
    if args.side == "data":
        return list(profile.data_trace(args.n, seed=args.seed))
    if args.side == "instr":
        return list(profile.instruction_trace(args.n, seed=args.seed))
    return list(profile.combined_trace(args.n, seed=args.seed))


def _maybe_sanitize(cache, args: argparse.Namespace):
    """Wrap ``cache`` in the runtime sanitizer when ``--sanitize`` is on."""
    if not args.sanitize:
        return cache
    from repro.analysis.sanitizer import SanitizedCache, strict_capable

    return SanitizedCache(cache, strict=strict_capable(cache), check_interval=1024)


def _run_json(args: argparse.Namespace, accesses: list) -> int:
    """Run all specs and dump one JSON document to stdout."""
    import json

    results = {"trace_length": len(accesses), "configs": {}}
    status = 0
    for spec in args.specs:
        try:
            cache = make_cache(
                spec, size=args.size, line_size=args.line, policy=args.policy
            )
        except ValueError as exc:
            print(f"{spec}: {exc}", file=sys.stderr)
            status = 2
            continue
        cache = _maybe_sanitize(cache, args)
        try:
            for access in accesses:
                cache.access(access.address, access.is_write)
            if args.sanitize:
                cache.finalize()
        except AssertionError as exc:
            print(f"{spec}: sanitizer violation: {exc}", file=sys.stderr)
            status = 3
            continue
        entry = cache.stats.as_dict()
        if args.balance:
            report = analyze_balance(cache.stats)
            entry["balance"] = {
                "frequent_hit_sets": report.frequent_hit_sets,
                "frequent_hit_share": report.frequent_hit_share,
                "frequent_miss_sets": report.frequent_miss_sets,
                "frequent_miss_share": report.frequent_miss_share,
                "less_accessed_sets": report.less_accessed_sets,
                "less_accessed_share": report.less_accessed_share,
            }
        results["configs"][spec] = entry
    print(json.dumps(results, indent=2))
    return status


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``bcache-sim``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="bcache-sim",
        description="Trace-driven cache simulator (B-Cache reproduction).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", help="trace file (.din/.txt text or binary)")
    source.add_argument(
        "--benchmark",
        choices=ALL_BENCHMARKS,
        help="built-in synthetic SPEC2K benchmark",
    )
    parser.add_argument(
        "--side",
        choices=("data", "instr", "combined"),
        default="data",
        help="which reference stream of the benchmark (default: data)",
    )
    parser.add_argument("--n", type=int, default=200_000,
                        help="trace length for synthetic benchmarks")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--size", type=int, default=16 * 1024,
                        help="cache size in bytes (default 16384)")
    parser.add_argument("--line", type=int, default=32,
                        help="line size in bytes (default 32)")
    parser.add_argument("--policy", default="lru",
                        help="replacement policy where applicable")
    parser.add_argument("--balance", action="store_true",
                        help="also print the Table 7 balance classification")
    parser.add_argument("--sanitize", action="store_true",
                        help="shadow-check every access with the runtime "
                        "sanitizer (see docs/analysis.md); exit 3 on any "
                        "invariant violation")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of the table")
    parser.add_argument("specs", nargs="+",
                        help="cache specs, e.g. dm 4way victim16 mf8_bas8")
    args = parser.parse_args(argv)

    try:
        accesses = _load_accesses(args)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error loading trace: {exc}", file=sys.stderr)
        return 1

    if args.json:
        return _run_json(args, accesses)

    print(f"trace: {len(accesses)} accesses")
    header = (
        f"{'config':<12} {'miss rate':>10} {'hits':>9} {'misses':>8} "
        f"{'evict':>7} {'wb':>6} {'PDhit@miss':>11}"
    )
    print(header)
    print("-" * len(header))
    status = 0
    for spec in args.specs:
        try:
            cache = make_cache(
                spec, size=args.size, line_size=args.line, policy=args.policy
            )
        except ValueError as exc:
            print(f"{spec:<12} error: {exc}", file=sys.stderr)
            status = 2
            continue
        cache = _maybe_sanitize(cache, args)
        try:
            for access in accesses:
                cache.access(access.address, access.is_write)
            if args.sanitize:
                cache.finalize()
        except AssertionError as exc:
            print(f"{spec:<12} sanitizer violation: {exc}", file=sys.stderr)
            status = 3
            continue
        stats = cache.stats
        pd = (
            f"{stats.pd_hit_rate_during_miss:>10.1%}"
            if spec.startswith("mf")
            else f"{'-':>10}"
        )
        print(
            f"{spec:<12} {stats.miss_rate:>9.3%} {stats.hits:>9} "
            f"{stats.misses:>8} {stats.evictions:>7} {stats.writebacks:>6} {pd}"
        )
        if args.balance:
            report = analyze_balance(stats)
            fhs, ch, fms, cm, las, tca = report.as_percent_row()
            print(
                f"{'':12} balance: fhs {fhs:.1f}% hold {ch:.1f}% of hits; "
                f"fms {fms:.1f}% hold {cm:.1f}% of misses; "
                f"las {las:.1f}% get {tca:.1f}% of accesses"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
