"""Statistics: counters, set-balance analysis and summaries."""

from repro.stats.balance import BalanceReport, analyze_balance
from repro.stats.confidence import Estimate, Z_95, estimate, replicate
from repro.stats.counters import CacheStats
from repro.stats.latency import LatencyRecorder, LatencySummary, percentile
from repro.stats.summary import (
    ConfigSummary,
    average_reduction,
    geometric_mean,
    improvement,
    miss_rate_reduction,
)

__all__ = [
    "BalanceReport",
    "Estimate",
    "Z_95",
    "estimate",
    "replicate",
    "CacheStats",
    "ConfigSummary",
    "LatencyRecorder",
    "LatencySummary",
    "percentile",
    "analyze_balance",
    "average_reduction",
    "geometric_mean",
    "improvement",
    "miss_rate_reduction",
]
