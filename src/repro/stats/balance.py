"""Set-balance analysis — Table 7 of the paper.

Section 6.4 classifies cache sets from per-set counters:

* **frequent hit set** — hits in the set are more than 2x the per-set
  average hit count;
* **frequent miss set** — misses in the set are more than 2x the
  per-set average miss count;
* **less accessed set** — total accesses to the set are below half the
  per-set average.

Table 7 reports, for each class, the *fraction of sets* in the class
and the *fraction of the relevant events* (hits / misses / accesses)
those sets absorb.  A balanced cache pushes hits across more sets,
shrinks the frequent-miss concentration and uses more of the
previously idle sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.counters import CacheStats


@dataclass(frozen=True, slots=True)
class BalanceReport:
    """Set-usage classification for one cache run (one Table 7 cell group).

    All fields are fractions in [0, 1]:
        frequent_hit_sets / frequent_hit_share: share of sets classified
            frequent-hit, and the share of all hits they hold (fhs / ch).
        frequent_miss_sets / frequent_miss_share: same for misses (fms / cm).
        less_accessed_sets / less_accessed_share: share of sets that are
            less-accessed and the share of accesses they receive (las / tca).
    """

    frequent_hit_sets: float
    frequent_hit_share: float
    frequent_miss_sets: float
    frequent_miss_share: float
    less_accessed_sets: float
    less_accessed_share: float

    def as_percent_row(self) -> tuple[float, ...]:
        """Row in Table 7's order (fhs, ch, fms, cm, las, tca), percent."""
        return (
            100.0 * self.frequent_hit_sets,
            100.0 * self.frequent_hit_share,
            100.0 * self.frequent_miss_sets,
            100.0 * self.frequent_miss_share,
            100.0 * self.less_accessed_sets,
            100.0 * self.less_accessed_share,
        )


def _classify(
    counts: list[int], threshold: float, above: bool
) -> tuple[int, int]:
    """Count sets beyond ``threshold`` and the events they hold."""
    sets = 0
    events = 0
    for count in counts:
        beyond = count > threshold if above else count < threshold
        if beyond:
            sets += 1
            events += count
    return sets, events


def analyze_balance(
    stats: CacheStats,
    hot_factor: float = 2.0,
    cold_factor: float = 0.5,
) -> BalanceReport:
    """Compute the Table 7 classification from per-set counters.

    Args:
        stats: cache statistics with per-set counters populated.
        hot_factor: multiple of the average that makes a set
            frequent-hit / frequent-miss (paper: 2x).
        cold_factor: fraction of the average below which a set is
            less-accessed (paper: 0.5x).
    """
    n = stats.num_sets
    if n == 0:
        raise ValueError("stats has no per-set counters")

    def fraction(part: int, whole: int) -> float:
        return part / whole if whole else 0.0

    avg_hits = stats.hits / n
    avg_misses = stats.misses / n
    avg_accesses = stats.accesses / n

    hot_hit_sets, hot_hits = _classify(stats.set_hits, hot_factor * avg_hits, True)
    hot_miss_sets, hot_misses = _classify(
        stats.set_misses, hot_factor * avg_misses, True
    )
    cold_sets, cold_accesses = _classify(
        stats.set_accesses, cold_factor * avg_accesses, False
    )

    return BalanceReport(
        frequent_hit_sets=fraction(hot_hit_sets, n),
        frequent_hit_share=fraction(hot_hits, stats.hits),
        frequent_miss_sets=fraction(hot_miss_sets, n),
        frequent_miss_share=fraction(hot_misses, stats.misses),
        less_accessed_sets=fraction(cold_sets, n),
        less_accessed_share=fraction(cold_accesses, stats.accesses),
    )
