"""Cross-seed statistics: are the reproduced shapes stable?

The paper runs each benchmark once (a deterministic SimpleScalar
simulation).  Our workloads are stochastic generators, so results are
a function of the seed; this module quantifies that sensitivity with
means, sample standard deviations and normal-approximation confidence
intervals over seed replicates.  The seed-sensitivity bench asserts
that the headline orderings hold across seeds, not just at seed 2006.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Callable, Sequence

#: Two-sided z value for 95% confidence.
Z_95 = 1.96


@dataclass(frozen=True, slots=True)
class Estimate:
    """Mean with spread over replicates."""

    mean: float
    stdev: float
    n: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.stdev / sqrt(self.n)

    def confidence_interval(self, z: float = Z_95) -> tuple[float, float]:
        """Two-sided normal-approximation interval around the mean."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    def overlaps(self, other: "Estimate", z: float = Z_95) -> bool:
        """Whether the two confidence intervals overlap."""
        a_low, a_high = self.confidence_interval(z)
        b_low, b_high = other.confidence_interval(z)
        return a_low <= b_high and b_low <= a_high

    def clearly_above(self, other: "Estimate", z: float = Z_95) -> bool:
        """True when this estimate's CI sits entirely above the other's."""
        return self.confidence_interval(z)[0] > other.confidence_interval(z)[1]


def estimate(values: Sequence[float]) -> Estimate:
    """Mean and sample standard deviation of replicates."""
    if not values:
        raise ValueError("values must be non-empty")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Estimate(mean=mean, stdev=0.0, n=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Estimate(mean=mean, stdev=sqrt(variance), n=n)


def replicate(
    metric: Callable[[int], float],
    seeds: Sequence[int],
) -> Estimate:
    """Evaluate ``metric(seed)`` for each seed and summarise."""
    return estimate([metric(seed) for seed in seeds])
