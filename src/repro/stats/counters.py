"""Cache statistics counters.

Every cache model owns a :class:`CacheStats`; per-set counters feed the
balance analysis of Table 7 (frequent-hit / frequent-miss /
less-accessed sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CacheStats:
    """Aggregate and per-set access counters for one cache."""

    num_sets: int = 0
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    reads: int = 0
    writes: int = 0
    evictions: int = 0
    writebacks: int = 0
    # B-Cache specific: programmable-decoder outcome during *misses*.
    pd_hit_misses: int = 0
    pd_miss_misses: int = 0
    set_accesses: list[int] = field(default_factory=list)
    set_hits: list[int] = field(default_factory=list)
    set_misses: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_sets and not self.set_accesses:
            self.set_accesses = [0] * self.num_sets
            self.set_hits = [0] * self.num_sets
            self.set_misses = [0] * self.num_sets

    def record(self, set_index: int, hit: bool, is_write: bool) -> None:
        """Record one access resolved at physical set ``set_index``."""
        self.accesses += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.set_accesses[set_index] += 1
        if hit:
            self.hits += 1
            self.set_hits[set_index] += 1
        else:
            self.misses += 1
            self.set_misses[set_index] += 1

    @property
    def miss_rate(self) -> float:
        """Misses / accesses; 0.0 for an untouched cache."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Hits / accesses; 0.0 for an untouched cache."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    @property
    def pd_hit_rate_during_miss(self) -> float:
        """Fraction of cache misses on which the PD nevertheless hit.

        This is the quantity plotted on the right axis of Figure 3 and
        tabulated in Table 6; low values mean the replacement policy is
        free to balance the accesses.  Conventional caches report 1.0
        (a fixed decoder always selects a set, predicting nothing).
        """
        if not self.misses:
            return 0.0
        return self.pd_hit_misses / self.misses

    def as_dict(self) -> dict:
        """Aggregate counters as a JSON-serialisable dict (no per-set
        arrays; use the balance analysis for set-level summaries)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "reads": self.reads,
            "writes": self.writes,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "pd_hit_misses": self.pd_hit_misses,
            "pd_miss_misses": self.pd_miss_misses,
            "pd_hit_rate_during_miss": self.pd_hit_rate_during_miss,
        }

    def snapshot(self) -> dict:
        """Lossless JSON-serialisable state, including per-set counters.

        Unlike :meth:`as_dict` (an aggregate summary), a snapshot round
        trips through :meth:`from_snapshot` bit-identically — this is
        the wire/journal format of the resilience layer.
        """
        return {
            "num_sets": self.num_sets,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "reads": self.reads,
            "writes": self.writes,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "pd_hit_misses": self.pd_hit_misses,
            "pd_miss_misses": self.pd_miss_misses,
            "set_accesses": list(self.set_accesses),
            "set_hits": list(self.set_hits),
            "set_misses": list(self.set_misses),
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "CacheStats":
        """Rebuild a stats object from :meth:`snapshot` output.

        Raises ``ValueError`` on malformed state (wrong per-set lengths
        or non-integral counters) so journal readers can treat a bad
        record as corrupt instead of resurrecting garbage.
        """
        try:
            stats = cls(
                num_sets=int(state["num_sets"]),
                accesses=int(state["accesses"]),
                hits=int(state["hits"]),
                misses=int(state["misses"]),
                reads=int(state["reads"]),
                writes=int(state["writes"]),
                evictions=int(state["evictions"]),
                writebacks=int(state["writebacks"]),
                pd_hit_misses=int(state["pd_hit_misses"]),
                pd_miss_misses=int(state["pd_miss_misses"]),
                set_accesses=[int(v) for v in state["set_accesses"]],
                set_hits=[int(v) for v in state["set_hits"]],
                set_misses=[int(v) for v in state["set_misses"]],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed stats snapshot: {exc}") from exc
        for per_set in (stats.set_accesses, stats.set_hits, stats.set_misses):
            if len(per_set) != stats.num_sets:
                raise ValueError(
                    "malformed stats snapshot: per-set counter length "
                    f"{len(per_set)} != num_sets {stats.num_sets}"
                )
        return stats

    def reset(self) -> None:
        """Zero all counters, keeping the set count."""
        per_set = self.num_sets
        self.__init__(num_sets=per_set)

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this stats object (same geometry)."""
        if other.num_sets != self.num_sets:
            raise ValueError("cannot merge stats with different set counts")
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.reads += other.reads
        self.writes += other.writes
        self.evictions += other.evictions
        self.writebacks += other.writebacks
        self.pd_hit_misses += other.pd_hit_misses
        self.pd_miss_misses += other.pd_miss_misses
        for i in range(self.num_sets):
            self.set_accesses[i] += other.set_accesses[i]
            self.set_hits[i] += other.set_hits[i]
            self.set_misses[i] += other.set_misses[i]
