"""Latency accounting for the serving layer.

The load generator (``bcache-loadgen``) and the serve tests need
request-latency percentiles without pulling in numpy on the service
path.  :func:`percentile` implements the standard linear-interpolation
estimator (numpy's default) over a sorted sample;
:class:`LatencyRecorder` accumulates observations and renders the
summary used in ``BENCH_serve.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def rank_position(count: int, q: float) -> tuple[int, int, float]:
    """Interpolation rank of the ``q``-th percentile in a ``count`` sample.

    Returns ``(lower, upper, weight)`` such that the percentile is
    ``sample[lower] * (1 - weight) + sample[upper] * weight`` — the
    standard linear-interpolation estimator (numpy's default).  Shared
    by :func:`percentile` (exact, over retained samples) and the obs
    histogram's bucket-based estimate
    (:meth:`repro.obs.metrics.Histogram.approx_percentile`).
    """
    if count < 1:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    rank = (q / 100.0) * (count - 1)
    lower = int(rank)
    upper = min(lower + 1, count - 1)
    return lower, upper, rank - lower


def percentile(sorted_values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of an ascending-sorted sample.

    Linear interpolation between closest ranks; raises ``ValueError``
    on an empty sample or a ``q`` outside [0, 100].
    """
    lower, upper, weight = rank_position(len(sorted_values), q)
    if len(sorted_values) == 1:
        return sorted_values[0]
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


@dataclass(slots=True)
class LatencySummary:
    """Percentile summary of one latency sample, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p90_ms": round(self.p90_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }

    def render(self) -> str:
        return (
            f"n={self.count} mean={self.mean_ms:.2f}ms "
            f"p50={self.p50_ms:.2f}ms p90={self.p90_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms max={self.max_ms:.2f}ms"
        )


@dataclass(slots=True)
class LatencyRecorder:
    """Accumulate per-request latencies (seconds in, milliseconds out)."""

    samples_s: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples_s.append(seconds)

    def __len__(self) -> int:
        return len(self.samples_s)

    def summary(self) -> LatencySummary:
        """Summarise what was recorded; raises ``ValueError`` if empty."""
        if not self.samples_s:
            raise ValueError("no latencies recorded")
        ordered = sorted(self.samples_s)
        scale = 1000.0
        return LatencySummary(
            count=len(ordered),
            mean_ms=scale * sum(ordered) / len(ordered),
            p50_ms=scale * percentile(ordered, 50.0),
            p90_ms=scale * percentile(ordered, 90.0),
            p99_ms=scale * percentile(ordered, 99.0),
            max_ms=scale * ordered[-1],
        )
