"""Summary helpers: miss-rate reductions and cross-benchmark averages.

The paper's figures report *percentage miss-rate reduction over the
direct-mapped baseline*; the "Ave" bar is the arithmetic mean of the
per-benchmark reductions (Section 4.3), not the reduction of the
pooled miss rate — reproduced here the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Mapping, Sequence


def miss_rate_reduction(baseline_rate: float, other_rate: float) -> float:
    """Fractional reduction of ``other`` vs ``baseline`` (1.0 = all misses gone).

    Returns 0.0 when the baseline had no misses (nothing to reduce).
    Negative values mean the alternative is *worse* than the baseline.
    """
    if baseline_rate <= 0.0:
        return 0.0
    return (baseline_rate - other_rate) / baseline_rate


def improvement(baseline_value: float, other_value: float) -> float:
    """Fractional increase of ``other`` over ``baseline`` (IPC-style)."""
    if baseline_value == 0.0:
        return 0.0
    return (other_value - baseline_value) / baseline_value


def average_reduction(reductions: Sequence[float]) -> float:
    """The figures' "Ave" bar: arithmetic mean of per-benchmark values."""
    if not reductions:
        return 0.0
    return mean(reductions)


@dataclass(frozen=True, slots=True)
class ConfigSummary:
    """Per-configuration results over a benchmark suite."""

    spec: str
    per_benchmark: Mapping[str, float]

    @property
    def average(self) -> float:
        """Arithmetic mean over the benchmarks (the figures' Ave bar)."""
        return average_reduction(list(self.per_benchmark.values()))

    def value(self, benchmark: str) -> float:
        """This configuration's value for one benchmark."""
        return self.per_benchmark[benchmark]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values (used for IPC ratios)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0.0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
