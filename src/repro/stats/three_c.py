"""3C miss classification: compulsory / capacity / conflict.

The paper's whole premise is that direct-mapped caches suffer
**conflict** misses — misses a fully associative cache of the same
capacity would not take (Hill's classic 3C model):

* **compulsory** — first reference to a block, misses everywhere;
* **capacity**  — misses even in a fully associative LRU cache of the
  same capacity;
* **conflict**  — everything else: an artefact of restricted placement,
  the target of the B-Cache, victim buffers, skewing et al.

:func:`classify_misses` runs the cache-under-test in lockstep with a
same-capacity fully associative LRU reference and buckets every miss.
The decomposition experiment shows the B-Cache removing most of the
baseline's conflict bucket while leaving compulsory/capacity intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.caches.base import Cache
from repro.caches.fully_associative import FullyAssociativeCache


@dataclass(frozen=True, slots=True)
class MissBreakdown:
    """Counts of each miss class for one run."""

    accesses: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def total_misses(self) -> int:
        """Sum of the three miss classes."""
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        """Total misses over accesses."""
        if not self.accesses:
            return 0.0
        return self.total_misses / self.accesses

    def fraction(self, kind: str) -> float:
        """Share of misses in one class (``compulsory``/``capacity``/``conflict``)."""
        total = self.total_misses
        if not total:
            return 0.0
        return getattr(self, kind) / total


def classify_misses(
    cache: Cache,
    addresses: Iterable[int],
    reference: FullyAssociativeCache | None = None,
) -> MissBreakdown:
    """Run ``addresses`` through ``cache``, classifying every miss.

    The fully associative LRU reference has the same capacity and line
    size as the cache under test (supply ``reference`` to reuse one
    across calls — it must be freshly flushed).
    """
    if reference is None:
        reference = FullyAssociativeCache(
            cache.size, cache.line_size, policy="lru"
        )
    if reference.size != cache.size or reference.line_size != cache.line_size:
        raise ValueError("reference capacity must match the cache under test")
    seen: set[int] = set()
    compulsory = 0
    capacity = 0
    conflict = 0
    accesses = 0
    offset_bits = cache.offset_bits
    for address in addresses:
        accesses += 1
        block = address >> offset_bits
        result = cache.access(address)
        reference_result = reference.access(address)
        if not result.hit:
            if block not in seen:
                compulsory += 1
            elif not reference_result.hit:
                capacity += 1
            else:
                conflict += 1
        seen.add(block)
    return MissBreakdown(
        accesses=accesses,
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )
