"""Memory-access trace primitives, file formats and stream utilities."""

from repro.trace.access import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    Access,
    AccessType,
    ifetch_access,
    read_access,
    write_access,
)
from repro.trace.trace_file import (
    TraceFormatError,
    load_trace,
    read_binary_trace,
    read_text_trace,
    save_trace,
    stream_trace,
    write_binary_trace,
    write_text_trace,
)

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "Access",
    "AccessType",
    "TraceFormatError",
    "ifetch_access",
    "load_trace",
    "read_access",
    "read_binary_trace",
    "read_text_trace",
    "save_trace",
    "stream_trace",
    "write_access",
    "write_binary_trace",
    "write_text_trace",
]
