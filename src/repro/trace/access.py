"""Memory-access primitives shared by every simulator component.

A trace is any iterable of :class:`Access` objects.  Addresses are plain
Python integers interpreted as byte addresses in a 32-bit physical
address space, matching the paper's experimental setup (Section 3.2:
"The address is assumed to have 32 bits").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

ADDRESS_BITS = 32
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1


class AccessType(enum.IntEnum):
    """Kind of memory reference, mirroring Dinero/din trace records."""

    READ = 0
    WRITE = 1
    IFETCH = 2

    @property
    def is_write(self) -> bool:
        """True for WRITE."""
        return self is AccessType.WRITE

    @property
    def is_instruction(self) -> bool:
        """True for IFETCH."""
        return self is AccessType.IFETCH


@dataclass(frozen=True, slots=True)
class Access:
    """A single memory reference.

    Attributes:
        address: byte address (masked to 32 bits).
        kind: read / write / instruction fetch.
    """

    address: int
    kind: AccessType = AccessType.READ

    def __post_init__(self) -> None:
        object.__setattr__(self, "address", self.address & ADDRESS_MASK)

    @property
    def is_write(self) -> bool:
        """True when this access is a store."""
        return self.kind is AccessType.WRITE

    @property
    def is_instruction(self) -> bool:
        """True when this access is an instruction fetch."""
        return self.kind is AccessType.IFETCH

    def block_address(self, line_size: int) -> int:
        """Address of the containing cache block for ``line_size`` bytes."""
        return self.address & ~(line_size - 1)


def read_access(address: int) -> Access:
    """Convenience constructor for a data read."""
    return Access(address, AccessType.READ)


def write_access(address: int) -> Access:
    """Convenience constructor for a data write."""
    return Access(address, AccessType.WRITE)


def ifetch_access(address: int) -> Access:
    """Convenience constructor for an instruction fetch."""
    return Access(address, AccessType.IFETCH)
