"""Stream utilities for composing and shaping access traces."""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, Sequence

from repro.trace.access import Access, AccessType


def take(trace: Iterable[Access], n: int) -> Iterator[Access]:
    """Yield at most the first ``n`` accesses of ``trace``."""
    return itertools.islice(trace, n)


def interleave(streams: Sequence[Iterable[Access]], weights: Sequence[float],
               rng: random.Random) -> Iterator[Access]:
    """Probabilistically interleave several access streams.

    Each step draws one stream with probability proportional to its
    weight and emits its next access.  A stream that runs dry is dropped
    (its weight is redistributed); iteration ends when every stream is
    exhausted.
    """
    if len(streams) != len(weights):
        raise ValueError("streams and weights must have the same length")
    iterators = [iter(s) for s in streams]
    live = list(range(len(iterators)))
    live_weights = [float(w) for w in weights]
    while live:
        choice = rng.choices(range(len(live)), weights=[live_weights[i] for i in live])[0]
        index = live[choice]
        try:
            yield next(iterators[index])
        except StopIteration:
            live.remove(index)


def round_robin(streams: Sequence[Iterable[Access]]) -> Iterator[Access]:
    """Deterministically interleave streams one access at a time."""
    iterators = [iter(s) for s in streams]
    while iterators:
        exhausted = []
        for iterator in iterators:
            try:
                yield next(iterator)
            except StopIteration:
                exhausted.append(iterator)
        for iterator in exhausted:
            iterators.remove(iterator)


def filter_kind(trace: Iterable[Access], kind: AccessType) -> Iterator[Access]:
    """Keep only accesses of the given kind."""
    return (a for a in trace if a.kind is kind)


def data_only(trace: Iterable[Access]) -> Iterator[Access]:
    """Keep only data reads and writes."""
    return (a for a in trace if not a.is_instruction)


def instructions_only(trace: Iterable[Access]) -> Iterator[Access]:
    """Keep only instruction fetches."""
    return (a for a in trace if a.is_instruction)


def offset(trace: Iterable[Access], delta: int) -> Iterator[Access]:
    """Shift every address by ``delta`` bytes."""
    return (Access(a.address + delta, a.kind) for a in trace)


def repeat(trace: Sequence[Access], times: int) -> Iterator[Access]:
    """Replay a materialised trace ``times`` times."""
    for _ in range(times):
        yield from trace
