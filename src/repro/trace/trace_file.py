"""Reading and writing traces.

Two interchangeable formats are supported:

* **Text** — one record per line, ``<kind> <hex-address>``, where kind is
  ``0`` (read), ``1`` (write) or ``2`` (ifetch).  This is the classic
  "din" format understood by Dinero-style simulators and is convenient
  for hand-written fixtures.
* **Binary** — little-endian ``<u8 kind><u32 address>`` records, five
  bytes each, for compact storage of long generated traces.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.trace.access import Access, AccessType

_BINARY_RECORD = struct.Struct("<BI")


class TraceFormatError(ValueError):
    """Raised when a trace file contains a malformed record."""


def write_text_trace(accesses: Iterable[Access], fp: IO[str]) -> int:
    """Write ``accesses`` in din text format; returns the record count."""
    count = 0
    for access in accesses:
        fp.write(f"{int(access.kind)} {access.address:x}\n")
        count += 1
    return count


def read_text_trace(fp: IO[str]) -> Iterator[Access]:
    """Yield accesses from a din-format text stream."""
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise TraceFormatError(f"line {lineno}: expected 2 fields, got {len(parts)}")
        try:
            kind = AccessType(int(parts[0]))
            address = int(parts[1], 16)
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        yield Access(address, kind)


def write_binary_trace(accesses: Iterable[Access], fp: IO[bytes]) -> int:
    """Write ``accesses`` as packed binary records; returns the count."""
    count = 0
    for access in accesses:
        fp.write(_BINARY_RECORD.pack(int(access.kind), access.address))
        count += 1
    return count


def read_binary_trace(fp: IO[bytes]) -> Iterator[Access]:
    """Yield accesses from a packed binary stream."""
    record_size = _BINARY_RECORD.size
    while True:
        raw = fp.read(record_size)
        if not raw:
            return
        if len(raw) != record_size:
            raise TraceFormatError("truncated binary trace record")
        kind_value, address = _BINARY_RECORD.unpack(raw)
        try:
            kind = AccessType(kind_value)
        except ValueError as exc:
            raise TraceFormatError(f"invalid access kind {kind_value}") from exc
        yield Access(address, kind)


def save_trace(accesses: Iterable[Access], path: str | Path) -> int:
    """Save a trace, choosing the format from the file suffix.

    ``.din``/``.txt`` selects text, anything else binary.
    """
    path = Path(path)
    if path.suffix in (".din", ".txt"):
        with path.open("w") as fp:
            return write_text_trace(accesses, fp)
    with path.open("wb") as fp:
        return write_binary_trace(accesses, fp)


def load_trace(path: str | Path) -> list[Access]:
    """Load a whole trace file into memory (suffix selects format)."""
    path = Path(path)
    if path.suffix in (".din", ".txt"):
        with path.open() as fp:
            return list(read_text_trace(fp))
    with path.open("rb") as fp:
        return list(read_binary_trace(fp))


def stream_trace(path: str | Path) -> Iterator[Access]:
    """Yield a trace file's accesses without materialising the list.

    Unlike :func:`load_trace` this keeps one record alive at a time, so
    arbitrarily long traces replay in constant memory (``bcache-sim``
    packs the stream straight into ``array`` blobs).
    """
    path = Path(path)
    if path.suffix in (".din", ".txt"):
        with path.open() as fp:
            yield from read_text_trace(fp)
    else:
        with path.open("rb") as fp:
            yield from read_binary_trace(fp)
