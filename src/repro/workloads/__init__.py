"""Synthetic SPEC2K workloads and the primitives they are built from."""

from repro.workloads.spec2k import (
    ALL_BENCHMARKS,
    CFP2K,
    CINT2K,
    QUIET_ICACHE,
    REPORTED_ICACHE,
    SPEC2K,
    BenchmarkProfile,
    get_profile,
)
from repro.workloads.synthesis import (
    BASELINE_WAY_SIZE,
    Component,
    build_address_stream,
    calls,
    capacity,
    conflict,
    hot,
    loop,
    stride_stream,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BASELINE_WAY_SIZE",
    "BenchmarkProfile",
    "CFP2K",
    "CINT2K",
    "Component",
    "QUIET_ICACHE",
    "REPORTED_ICACHE",
    "SPEC2K",
    "build_address_stream",
    "calls",
    "capacity",
    "conflict",
    "get_profile",
    "hot",
    "loop",
    "stride_stream",
]
