"""Bulk trace export: write the synthetic SPEC2K suite to disk.

External simulators (Dinero, students' course projects, other
reproductions) can consume the same deterministic traces this study
uses.  Each benchmark gets one file per requested side in the chosen
format (text ``.din`` or binary ``.trc``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.trace.trace_file import save_trace
from repro.workloads.spec2k import ALL_BENCHMARKS, get_profile


def export_suite(
    directory: str | Path,
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n: int = 200_000,
    seed: int = 2006,
    sides: Sequence[str] = ("data", "instr"),
    binary: bool = False,
) -> list[Path]:
    """Write trace files for ``benchmarks``; returns the paths written.

    File naming: ``<benchmark>.<side>.din`` (text) or ``.trc`` (binary).
    ``sides`` may include ``data``, ``instr`` and ``combined`` (for the
    combined side ``n`` counts instructions).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".trc" if binary else ".din"
    written: list[Path] = []
    for name in benchmarks:
        profile = get_profile(name)
        for side in sides:
            if side == "data":
                trace = profile.data_trace(n, seed=seed)
            elif side == "instr":
                trace = profile.instruction_trace(n, seed=seed)
            elif side == "combined":
                trace = profile.combined_trace(n, seed=seed)
            else:
                raise ValueError(
                    f"side must be data/instr/combined, got {side!r}"
                )
            path = directory / f"{name}.{side}{suffix}"
            save_trace(trace, path)
            written.append(path)
    return written
