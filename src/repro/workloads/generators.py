"""Address-stream primitives for synthetic workload construction.

Each primitive returns an *infinite* iterator of byte addresses with a
specific, well-understood cache behaviour.  Benchmark profiles
(:mod:`repro.workloads.spec2k`) compose weighted mixtures of these
primitives to recreate the qualitative access structure the paper
documents per benchmark (conflict degree, working-set size, set-usage
imbalance).

Primitive cheat sheet (behaviour on a direct-mapped cache of
``way_size`` bytes):

=====================  ====================================================
``conflict_rotation``  N tags sharing an index region — pure conflict
                       misses, eliminated by associativity >= N
``zipf_hot``           skewed reuse inside a resident working set —
                       frequent-hit sets, almost no misses
``sequential_scan``    streaming sweep much larger than the cache —
                       compulsory/capacity misses, uniform across sets
``uniform_random``     random blocks in a huge region — uniform capacity
                       misses no organisation can remove
``pointer_chase``      fixed random permutation walk — capacity misses
                       with negligible spatial locality
``strided``            regular stride inside a bounded region — resident
                       (reuse) or streaming depending on region size
``loop_ifetch``        straight-line code loop — compulsory misses only
``call_chain_ifetch``  alternating code regions that collide in the
                       cache — instruction conflict misses
=====================  ====================================================
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence


def strided(
    base: int, region: int, stride: int, line_size: int = 32
) -> Iterator[int]:
    """Endless strided sweep over ``[base, base + region)``.

    A region smaller than the cache produces hits after the first
    sweep; a larger one produces a streaming (capacity) pattern.
    """
    if stride <= 0 or region <= 0:
        raise ValueError("stride and region must be positive")
    offset = 0
    while True:
        yield base + offset
        offset += stride
        if offset >= region:
            offset = 0


def sequential_scan(base: int, region: int, line_size: int = 32) -> Iterator[int]:
    """Streaming sweep touching every block of a (large) region."""
    return strided(base, region, line_size, line_size)


def conflict_rotation(
    base: int,
    conflict_stride: int,
    degree: int,
    rng: random.Random,
    span_blocks: int = 8,
    dwell: int = 1,
    line_size: int = 32,
) -> Iterator[int]:
    """Random rotation over ``degree`` address regions colliding in the cache.

    The regions start at ``base + i * conflict_stride``; choosing
    ``conflict_stride`` equal to the cache's way size makes all regions
    map to identical sets, so a direct-mapped cache thrashes while an
    associativity >= ``degree`` (or a B-Cache with BAS >= ``degree``)
    holds every region simultaneously.  Region visits are drawn
    *randomly* rather than cyclically: cyclic rotation is the textbook
    LRU pathology (zero hits until associativity reaches ``degree``),
    whereas random visits give the graded hit rate ``~a/degree`` for an
    ``a``-way cache that real workloads exhibit and the paper's 2-way <
    4-way < 8-way ordering depends on.

    ``conflict_stride`` also controls *which tag bits differ* between
    the colliding regions, and therefore whether the B-Cache's
    programmable decoder can tell them apart: a stride of
    ``way_size * 2**k`` leaves the low ``k`` tag bits identical, so a
    PD with ``log2(MF) <= k`` borrowed tag bits keeps hitting during
    misses and the replacement policy stays handcuffed (the wupwise
    effect of Figure 3).

    Args:
        span_blocks: consecutive blocks touched per visit to a region.
        dwell: how many back-to-back accesses each block receives.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    while True:
        region_base = base + rng.randrange(degree) * conflict_stride
        for block in range(span_blocks):
            for _ in range(dwell):
                yield region_base + block * line_size


def zipf_hot(
    base: int,
    region: int,
    rng: random.Random,
    alpha: float = 1.2,
    line_size: int = 32,
) -> Iterator[int]:
    """Zipf-distributed reuse over the blocks of a bounded region.

    Models hot data (stack frames, accumulators, hash-table heads):
    when the region fits in the cache this stream is nearly all hits,
    concentrated on few sets — the paper's "frequent hit sets"
    (Table 7 shows ~6 % of sets absorbing ~57 % of baseline hits).
    """
    num_blocks = max(1, region // line_size)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(num_blocks)]
    # Deterministic shuffle decouples popularity rank from address order
    # so the hot blocks scatter across sets instead of clustering at 0.
    order = list(range(num_blocks))
    rng.shuffle(order)
    cumulative: list[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    while True:
        pick = rng.random() * total
        lo, hi = 0, num_blocks - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < pick:
                lo = mid + 1
            else:
                hi = mid
        yield base + order[lo] * line_size


def uniform_random(
    base: int, region: int, rng: random.Random, line_size: int = 32
) -> Iterator[int]:
    """Uniformly random block accesses in ``region`` bytes.

    With ``region`` far larger than the cache these are misses no
    organisation can remove, spread evenly over all sets — the paper's
    explanation for why art/lucas/swim/mcf barely improve under *any*
    organisation (Section 6.4: "there are no frequent miss sets for
    these benchmarks").
    """
    num_blocks = max(1, region // line_size)
    while True:
        yield base + rng.randrange(num_blocks) * line_size


def pointer_chase(
    base: int,
    nodes: int,
    rng: random.Random,
    node_size: int = 32,
) -> Iterator[int]:
    """Walk a fixed random permutation of ``nodes`` node addresses.

    Models linked-data traversal (mcf's sparse network): long reuse
    distance, no spatial locality, misses uniform over sets when the
    node pool exceeds the cache.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    successor = list(range(nodes))
    rng.shuffle(successor)
    current = 0
    while True:
        yield base + current * node_size
        current = successor[current]


def loop_ifetch(
    base: int, body_bytes: int, line_size: int = 32
) -> Iterator[int]:
    """Instruction fetch of a tight loop: sequential blocks, repeated.

    A loop body that fits in the I-cache misses only on the first
    iteration — the behaviour behind the 11 benchmarks whose I$ miss
    rate is below 0.01 % (Section 4.2).
    """
    return strided(base, max(body_bytes, line_size), line_size, line_size)


def call_chain_ifetch(
    functions: Sequence[tuple[int, int]],
    rng: random.Random,
    burst: int = 4,
    line_size: int = 32,
) -> Iterator[int]:
    """Alternate sequential fetch among several code regions.

    ``functions`` is a sequence of ``(start_address, length_bytes)``.
    Laying the regions at cache-conflicting addresses reproduces the
    instruction conflict misses of call-heavy benchmarks (crafty, eon,
    gcc, perlbmk, vortex), which the paper's I$ results show responding
    strongly to associativity (Figure 5).

    Args:
        burst: average number of sequential blocks fetched per visit.
    """
    if not functions:
        raise ValueError("functions must be non-empty")
    positions = [0] * len(functions)
    while True:
        index = rng.randrange(len(functions))
        start, length = functions[index]
        blocks = max(1, length // line_size)
        run = max(1, min(blocks, int(rng.expovariate(1.0 / burst)) + 1))
        position = positions[index]
        for _ in range(run):
            yield start + position * line_size
            position = (position + 1) % blocks
        positions[index] = position


def interleave_addresses(
    components: Sequence[tuple[float, Iterator[int]]],
    rng: random.Random,
) -> Iterator[int]:
    """Mix address streams, drawing each step by weight.

    All primitives above are infinite, so this never terminates; the
    consumer bounds the stream (``itertools.islice`` / trace length).
    """
    if not components:
        raise ValueError("components must be non-empty")
    weights = [weight for weight, _ in components]
    iterators = [iterator for _, iterator in components]
    indices = list(range(len(iterators)))
    if len(iterators) == 1:
        yield from iterators[0]
        return
    cumulative: list[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    # Draw selections in batches: random.choices dominates the cost of
    # trace generation when called once per address.
    batch = 1024
    while True:
        for picked in rng.choices(indices, cum_weights=cumulative, k=batch):
            yield next(iterators[picked])
