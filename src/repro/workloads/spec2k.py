"""Synthetic stand-ins for the 26 SPEC2K benchmarks.

The paper evaluates pre-compiled Alpha SPEC2K binaries under
SimpleScalar (Section 4.2) — binaries and reference inputs we cannot
ship or run.  Each profile below is a deterministic synthetic workload
whose *cache-relevant structure* is tuned to the per-benchmark facts
the paper documents:

* conflict degree (how much associativity helps: Figures 4, 5, 12);
* whether misses concentrate in few sets or spread uniformly
  (Table 7: art/lucas/swim/mcf "have no frequent miss sets" and barely
  improve under any organisation);
* whether the conflicting addresses share their low tag bits, which
  blinds the B-Cache's programmable decoder at small MF (the wupwise
  behaviour of Figure 3: improvement only once MF reaches 64, i.e. the
  colliding regions sit 2^19 bytes apart);
* whether the simultaneously-thrashing footprint fits a 16-entry
  victim buffer (Section 6.6: the buffer beats the B-Cache on the
  wupwise data stream and nowhere else; on instruction streams the
  thrashing footprint is large and the buffer lags by ~38 %);
* I-cache intensity (Section 4.2 lists eleven benchmarks whose I$ miss
  rate is below 0.01 %; only the remaining fifteen appear in Figure 5).

Every profile's ``notes`` field cites the paper facts it encodes.
Absolute miss rates are not calibrated to SPEC2K (our substrate is
synthetic); relative reductions and orderings are the reproduced
quantities.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.trace.access import Access, AccessType
from repro.workloads.synthesis import (
    CODE_SEGMENT,
    DATA_SEGMENT,
    Component,
    addresses_to_accesses,
    build_address_stream,
    calls,
    capacity,
    conflict,
    hot,
    loop,
    stride_stream,
)


@dataclass(frozen=True)
class BenchmarkProfile:
    """One synthetic SPEC2K benchmark: data and instruction behaviour."""

    name: str
    suite: str  # "CINT2K" or "CFP2K"
    data: tuple[Component, ...]
    instr: tuple[Component, ...]
    write_fraction: float = 0.30
    mem_ratio: float = 0.35
    notes: str = ""

    def __post_init__(self) -> None:
        if self.suite not in ("CINT2K", "CFP2K"):
            raise ValueError(f"suite must be CINT2K or CFP2K, got {self.suite!r}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 < self.mem_ratio <= 1.0:
            raise ValueError("mem_ratio must be in (0, 1]")

    # ------------------------------------------------------------------
    def data_trace(self, n: int, seed: int = 0) -> Iterator[Access]:
        """Bounded data-reference trace (reads and writes)."""
        addresses = build_address_stream(self.data, seed, segment=DATA_SEGMENT)
        return addresses_to_accesses(addresses, n, self.write_fraction, seed)

    def instruction_trace(self, n: int, seed: int = 0) -> Iterator[Access]:
        """Bounded instruction-fetch trace."""
        addresses = build_address_stream(self.instr, seed, segment=CODE_SEGMENT)
        return addresses_to_accesses(
            addresses, n, 0.0, seed, kind_if_not_write=AccessType.IFETCH
        )

    def combined_trace(self, instructions: int, seed: int = 0) -> Iterator[Access]:
        """Per-instruction interleaving: one ifetch, a data access for
        roughly ``mem_ratio`` of instructions (load/store mix set by
        ``write_fraction``)."""
        ifetches = build_address_stream(self.instr, seed, segment=CODE_SEGMENT)
        data = build_address_stream(self.data, seed + 1, segment=DATA_SEGMENT)
        rng = random.Random(seed ^ 0xC0DE)
        for _ in range(instructions):
            yield Access(next(ifetches), AccessType.IFETCH)
            if rng.random() < self.mem_ratio:
                if rng.random() < self.write_fraction:
                    yield Access(next(data), AccessType.WRITE)
                else:
                    yield Access(next(data), AccessType.READ)

    # Fast paths for the experiment harness (no Access allocation). ----
    def data_addresses(self, n: int, seed: int = 0) -> list[int]:
        """First ``n`` data addresses as a plain list (fast path)."""
        stream = build_address_stream(self.data, seed, segment=DATA_SEGMENT)
        return list(itertools.islice(stream, n))

    def instr_addresses(self, n: int, seed: int = 0) -> list[int]:
        """First ``n`` instruction-fetch addresses as a plain list."""
        stream = build_address_stream(self.instr, seed, segment=CODE_SEGMENT)
        return list(itertools.islice(stream, n))


def _profile(
    name: str,
    suite: str,
    data: tuple[Component, ...],
    instr: tuple[Component, ...],
    write_fraction: float = 0.30,
    mem_ratio: float = 0.35,
    notes: str = "",
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite=suite,
        data=data,
        instr=instr,
        write_fraction=write_fraction,
        mem_ratio=mem_ratio,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Shared instruction-side building blocks
# ----------------------------------------------------------------------
def _quiet_icache(body_kb: float = 5) -> tuple[Component, ...]:
    """I-stream for the eleven benchmarks with I$ miss rate < 0.01 %."""
    return (loop(1.0, body_kb=body_kb),)


def _conflicting_icache(
    degree: int,
    weight: float,
    func_bytes: int = 512,
    body_kb: float = 3,
    tag_share_bits: int = 0,
    set_region: int = 14,
) -> tuple[Component, ...]:
    """Loop body plus a colliding call chain (instruction conflicts)."""
    return (
        loop(1.0 - weight, body_kb=body_kb),
        calls(
            weight,
            functions=degree,
            func_bytes=func_bytes,
            tag_share_bits=tag_share_bits,
            set_region=set_region,
        ),
    )


# ----------------------------------------------------------------------
# The 26 profiles
# ----------------------------------------------------------------------
_PROFILES: tuple[BenchmarkProfile, ...] = (
    # ------------------------------------------------------------ CINT2K
    _profile(
        "bzip2", "CINT2K",
        data=(hot(0.925, region_kb=6), conflict(0.028, degree=4), capacity(0.047, 1024, "scan")),
        instr=_quiet_icache(5),
        notes="I$ quiet (Sec 4.2 list); moderate D$ conflicts, degree 4.",
    ),
    _profile(
        "crafty", "CINT2K",
        data=(hot(0.91, region_kb=6), conflict(0.065, degree=5, set_region=12),
              capacity(0.025, 1536, "random")),
        instr=_conflicting_icache(5, 0.028, func_bytes=768),
        notes="8-way >10% better than 4-way on both caches (Sec 4.3.1); "
              "largest energy reduction, 14% (Sec 6.2).",
    ),
    _profile(
        "eon", "CINT2K",
        data=(hot(0.94, region_kb=6), conflict(0.038, degree=5), capacity(0.022, 768, "scan")),
        instr=_conflicting_icache(5, 0.022, func_bytes=640),
        notes="8-way clearly above 4-way on I$ (Sec 4.3.1).",
    ),
    _profile(
        "gap", "CINT2K",
        data=(hot(0.93, region_kb=6), conflict(0.042, degree=5, set_region=14),
              capacity(0.028, 1024, "scan")),
        instr=_conflicting_icache(5, 0.018),
        notes="8-way >10% over 4-way on I$ (Sec 4.3.1).",
    ),
    _profile(
        "gcc", "CINT2K",
        data=(hot(0.905, region_kb=6), conflict(0.055, degree=5), capacity(0.04, 2048, "random")),
        instr=(loop(0.945, body_kb=3), calls(0.045, functions=5, func_bytes=896),
               capacity(0.01, 96, "scan")),
        notes="Large code footprint; strong I$ and D$ response to associativity.",
    ),
    _profile(
        "gzip", "CINT2K",
        data=(hot(0.93, region_kb=6), conflict(0.025, degree=3), capacity(0.045, 512, "scan")),
        instr=_quiet_icache(4),
        notes="I$ quiet; shallow D$ conflicts (degree 3) — 2-way captures most.",
    ),
    _profile(
        "mcf", "CINT2K",
        data=(hot(0.62, region_kb=8), conflict(0.006, degree=3), capacity(0.374, 8192, "chase")),
        instr=_quiet_icache(3),
        write_fraction=0.22,
        notes="Pointer-chasing over a huge network: misses uniform over sets, "
              "no frequent-miss sets, <10% reduction for every organisation "
              "(Sec 6.4, Table 7).",
    ),
    _profile(
        "parser", "CINT2K",
        data=(hot(0.915, region_kb=6), conflict(0.042, degree=4), capacity(0.043, 1024, "random")),
        instr=_conflicting_icache(4, 0.014),
        notes="Moderate conflicts on both sides.",
    ),
    _profile(
        "perlbmk", "CINT2K",
        data=(hot(0.93, region_kb=6), conflict(0.04, degree=4), capacity(0.03, 768, "scan")),
        instr=_conflicting_icache(9, 0.024, func_bytes=384),
        notes="Only benchmark where 32-way beats 8-way by ~20% (Sec 4.3.1): "
              "I$ call-chain conflict degree 12 exceeds BAS=8.",
    ),
    _profile(
        "twolf", "CINT2K",
        data=(hot(0.9, region_kb=6), conflict(0.07, degree=5, set_region=13),
              capacity(0.03, 1024, "random")),
        instr=_conflicting_icache(5, 0.02),
        notes="8-way >10% over 4-way on I$ (Sec 4.3.1); conflict-heavy placement.",
    ),
    _profile(
        "vortex", "CINT2K",
        data=(hot(0.925, region_kb=6), conflict(0.045, degree=5), capacity(0.03, 1536, "scan")),
        instr=_conflicting_icache(5, 0.026, func_bytes=768),
        notes="Call-heavy OO database: strong I$ conflicts.",
    ),
    _profile(
        "vpr", "CINT2K",
        data=(hot(0.9, region_kb=6), conflict(0.048, degree=4), capacity(0.052, 1536, "random")),
        instr=_quiet_icache(5),
        notes="I$ quiet (Sec 4.2 list); routing arrays give moderate D$ conflicts.",
    ),
    # ------------------------------------------------------------ CFP2K
    _profile(
        "ammp", "CFP2K",
        data=(hot(0.9, region_kb=6), conflict(0.05, degree=4), capacity(0.05, 2048, "scan")),
        instr=_conflicting_icache(3, 0.008),
        notes="Table 7 baseline: ~6.8% of sets hold ~54% of hits.",
    ),
    _profile(
        "applu", "CFP2K",
        data=(hot(0.88, region_kb=8), conflict(0.022, degree=4),
              stride_stream(0.098, 4096, stride=64)),
        instr=_quiet_icache(6),
        write_fraction=0.35,
        notes="I$ quiet; streaming FP arrays dominate D$ misses.",
    ),
    _profile(
        "apsi", "CFP2K",
        data=(hot(0.91, region_kb=6), conflict(0.048, degree=5, set_region=12),
              capacity(0.042, 2048, "scan")),
        instr=_conflicting_icache(4, 0.012),
        notes="Moderate FP conflicts, degree 6.",
    ),
    _profile(
        "art", "CFP2K",
        data=(hot(0.55, region_kb=8), conflict(0.004, degree=2), capacity(0.446, 4096, "scan")),
        instr=_quiet_icache(3),
        write_fraction=0.25,
        notes="Streaming neural-net weights: uniform capacity misses, "
              "<10% reduction for every organisation (Sec 6.4).",
    ),
    _profile(
        "equake", "CFP2K",
        data=(hot(0.865, region_kb=6), conflict(0.14, degree=5, span=6, set_region=12),
              capacity(0.012, 1024, "scan")),
        instr=_conflicting_icache(5, 0.016),
        notes=">80% D$ miss-rate reduction; misses concentrated (76.9% of "
              "baseline misses in 5.5% of sets, Table 7); biggest IPC gain, "
              "+27.1% (Sec 6.1).",
    ),
    _profile(
        "facerec", "CFP2K",
        data=(hot(0.9, region_kb=6), conflict(0.055, degree=4, tag_share_bits=3),
              capacity(0.045, 2048, "scan")),
        instr=_quiet_icache(6),
        notes="D$ B-Cache(MF=8) below 4-way (Sec 4.3.2): colliding regions "
              "2^17 apart share the PD's 3 tag bits.",
    ),
    _profile(
        "fma3d", "CFP2K",
        data=(hot(0.91, region_kb=6), conflict(0.062, degree=6, set_region=15),
              capacity(0.028, 2048, "scan")),
        instr=_conflicting_icache(5, 0.018),
        notes="8-way >10% over 4-way on D$ (Sec 4.3.1): conflict degree 8.",
    ),
    _profile(
        "galgel", "CFP2K",
        data=(hot(0.9, region_kb=6), conflict(0.048, degree=4, tag_share_bits=3, set_region=12),
              capacity(0.052, 1536, "scan")),
        instr=_quiet_icache(6),
        notes="Same PD-blinding structure as facerec (Sec 4.3.2).",
    ),
    _profile(
        "lucas", "CFP2K",
        data=(hot(0.72, region_kb=8), capacity(0.28, 4096, "scan")),
        instr=_quiet_icache(4),
        write_fraction=0.35,
        notes="FFT sweeps: uniform capacity misses, no frequent-miss sets "
              "(Sec 6.4).",
    ),
    _profile(
        "mesa", "CFP2K",
        data=(hot(0.93, region_kb=6), conflict(0.042, degree=4), capacity(0.028, 1024, "scan")),
        instr=_conflicting_icache(4, 0.012),
        notes="Software rendering: moderate conflicts on both sides.",
    ),
    _profile(
        "mgrid", "CFP2K",
        data=(hot(0.86, region_kb=8), conflict(0.018, degree=3),
              stride_stream(0.122, 6144, stride=96)),
        instr=_quiet_icache(6),
        write_fraction=0.35,
        notes="I$ quiet; multigrid stencil streams dominate.",
    ),
    _profile(
        "sixtrack", "CFP2K",
        data=(hot(0.92, region_kb=6), conflict(0.045, degree=5, tag_share_bits=3, set_region=14),
              capacity(0.035, 1536, "scan")),
        instr=_conflicting_icache(4, 0.012),
        notes="D$ B-Cache(MF=8) below 4-way (Sec 4.3.2), PD-blinded conflicts.",
    ),
    _profile(
        "swim", "CFP2K",
        data=(hot(0.68, region_kb=8), capacity(0.32, 6144, "scan")),
        instr=_quiet_icache(4),
        write_fraction=0.4,
        notes="Shallow-water arrays: uniform capacity misses (Sec 6.4).",
    ),
    _profile(
        "wupwise", "CFP2K",
        data=(hot(0.9, region_kb=6), conflict(0.065, degree=5, span=3, tag_share_bits=5),
              capacity(0.035, 1536, "scan")),
        instr=_conflicting_icache(4, 0.01),
        notes="Figure 3 benchmark: colliding regions 2^19 apart, so the PD "
              "hits during misses until MF reaches 64 and the miss rate "
              "falls only then; thrashing footprint (15 blocks) fits the "
              "16-entry victim buffer, the one D$ where the buffer wins "
              "(Sec 6.6).",
    ),
)

#: All profiles by name.
SPEC2K: dict[str, BenchmarkProfile] = {p.name: p for p in _PROFILES}

#: Suite groupings used by Figure 4's two panels.
CINT2K: tuple[str, ...] = tuple(p.name for p in _PROFILES if p.suite == "CINT2K")
CFP2K: tuple[str, ...] = tuple(p.name for p in _PROFILES if p.suite == "CFP2K")

#: Benchmarks whose I$ results Figure 5 reports (miss rate >= 0.01 %).
REPORTED_ICACHE: tuple[str, ...] = (
    "ammp", "apsi", "crafty", "eon", "equake", "fma3d", "gap", "gcc",
    "mesa", "parser", "perlbmk", "sixtrack", "twolf", "vortex", "wupwise",
)

#: The complement: I$ miss rate below 0.01 % (Section 4.2).
QUIET_ICACHE: tuple[str, ...] = (
    "applu", "art", "bzip2", "facerec", "galgel", "gzip", "lucas", "mcf",
    "mgrid", "swim", "vpr",
)

ALL_BENCHMARKS: tuple[str, ...] = tuple(sorted(SPEC2K))


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name."""
    try:
        return SPEC2K[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {', '.join(ALL_BENCHMARKS)}"
        ) from None
