"""Turning declarative component specs into concrete address streams.

A :class:`Component` is pure data — a primitive kind, a mixing weight
and primitive parameters — so benchmark profiles can be inspected,
compared and unit-tested without generating a single address.  The
functions here bind components to base addresses, seed them
deterministically and mix them into bounded traces.

Layout: every component of a profile gets its own 32 MB address slot,
so streams never collide by accident; all conflict structure is
explicit in the component parameters.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.trace.access import Access, AccessType
from repro.workloads import generators

#: Way size of the paper's baseline (16 kB direct-mapped cache): the
#: unit in which conflict strides are expressed.
BASELINE_WAY_SIZE = 16 * 1024

#: Address slot carved out per component (keeps streams disjoint).
SLOT_BYTES = 32 * 1024 * 1024

#: Data segment base; code segment sits low like a real executable.
DATA_SEGMENT = 0x1000_0000
CODE_SEGMENT = 0x0040_0000

LINE_SIZE = 32


@dataclass(frozen=True)
class Component:
    """One weighted primitive inside a benchmark profile."""

    kind: str
    weight: float
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"component weight must be positive, got {self.weight}")
        if self.kind not in _BUILDERS:
            raise ValueError(
                f"unknown component kind {self.kind!r}; choose from {sorted(_BUILDERS)}"
            )


# ----------------------------------------------------------------------
# Component constructors used by the benchmark profiles
# ----------------------------------------------------------------------
def hot(
    weight: float, region_kb: float = 8, alpha: float = 1.15, offset_kb: float = 0
) -> Component:
    """Zipf-skewed reuse over a small resident region (mostly hits)."""
    return Component(
        "zipf",
        weight,
        {
            "region": int(region_kb * 1024),
            "alpha": alpha,
            "offset": int(offset_kb * 1024),
        },
    )


def conflict(
    weight: float,
    degree: int,
    span: int = 8,
    tag_share_bits: int = 0,
    dwell: int = 1,
    set_region: int = 15,
) -> Component:
    """Rotation over ``degree`` regions colliding in the baseline cache.

    ``tag_share_bits`` sets the conflict stride to
    ``way_size * 2**tag_share_bits``: the colliding regions then agree
    on their ``tag_share_bits`` lowest tag bits, which blinds any
    programmable decoder with ``log2(MF) <= tag_share_bits`` borrowed
    tag bits (the Figure 3 / wupwise effect).

    ``set_region`` (0..15) places the colliding blocks in the upper
    half of the baseline's index space, away from the hot data in the
    lower half, so the conflict degree stays exactly as authored.
    """
    if not 0 <= set_region < 16:
        raise ValueError(f"set_region must be in 0..15, got {set_region}")
    offset = BASELINE_WAY_SIZE // 2 + set_region * 512
    return Component(
        "conflict",
        weight,
        {
            "degree": degree,
            "span": span,
            "stride": BASELINE_WAY_SIZE << tag_share_bits,
            "dwell": dwell,
            "offset": offset,
        },
    )


def capacity(weight: float, region_kb: float = 2048, kind: str = "scan") -> Component:
    """Misses no organisation can remove: scan / random / pointer chase."""
    if kind not in ("scan", "random", "chase"):
        raise ValueError(f"capacity kind must be scan/random/chase, got {kind!r}")
    return Component(kind, weight, {"region": int(region_kb * 1024)})


def stride_stream(weight: float, region_kb: float, stride: int = 128) -> Component:
    """Regular strided sweep (FP array traversal)."""
    return Component("stride", weight, {"region": int(region_kb * 1024), "stride": stride})


def loop(weight: float, body_kb: float = 8) -> Component:
    """Tight code loop that fits in the I-cache (compulsory misses only)."""
    return Component("loop", weight, {"body": int(body_kb * 1024)})


def calls(
    weight: float,
    functions: int,
    func_bytes: int = 512,
    tag_share_bits: int = 0,
    burst: int = 4,
    set_region: int = 15,
) -> Component:
    """Call chain among code regions placed at colliding addresses.

    ``set_region`` works like :func:`conflict`'s: it keeps the
    colliding functions clear of the sequential loop body mapped in the
    lower half of the index space.
    """
    if not 0 <= set_region < 16:
        raise ValueError(f"set_region must be in 0..15, got {set_region}")
    offset = BASELINE_WAY_SIZE // 2 + set_region * 512
    return Component(
        "calls",
        weight,
        {
            "functions": functions,
            "func_bytes": func_bytes,
            "stride": BASELINE_WAY_SIZE << tag_share_bits,
            "burst": burst,
            "offset": offset,
        },
    )


# ----------------------------------------------------------------------
# Binding components to generators
# ----------------------------------------------------------------------
def _build_zipf(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    return generators.zipf_hot(
        base + params.get("offset", 0),
        params["region"],
        rng,
        alpha=params["alpha"],
        line_size=LINE_SIZE,
    )


def _build_conflict(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    return generators.conflict_rotation(
        base + params.get("offset", 0),
        conflict_stride=params["stride"],
        degree=params["degree"],
        rng=rng,
        span_blocks=params["span"],
        dwell=params["dwell"],
        line_size=LINE_SIZE,
    )


def _build_scan(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    return generators.sequential_scan(base, params["region"], line_size=LINE_SIZE)


def _build_random(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    return generators.uniform_random(base, params["region"], rng, line_size=LINE_SIZE)


def _build_chase(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    nodes = max(1, params["region"] // LINE_SIZE)
    return generators.pointer_chase(base, nodes, rng, node_size=LINE_SIZE)


def _build_stride(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    return generators.strided(base, params["region"], params["stride"],
                              line_size=LINE_SIZE)


def _build_loop(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    return generators.loop_ifetch(base, params["body"], line_size=LINE_SIZE)


def _build_calls(base: int, params: dict, rng: random.Random) -> Iterator[int]:
    start = base + params.get("offset", 0)
    functions = [
        (start + i * params["stride"], params["func_bytes"])
        for i in range(params["functions"])
    ]
    return generators.call_chain_ifetch(functions, rng, burst=params["burst"],
                                        line_size=LINE_SIZE)


_BUILDERS = {
    "zipf": _build_zipf,
    "conflict": _build_conflict,
    "scan": _build_scan,
    "random": _build_random,
    "chase": _build_chase,
    "stride": _build_stride,
    "loop": _build_loop,
    "calls": _build_calls,
}


def build_address_stream(
    components: tuple[Component, ...],
    seed: int,
    segment: int = DATA_SEGMENT,
) -> Iterator[int]:
    """Instantiate and mix a profile's components into one address stream."""
    if not components:
        raise ValueError("components must be non-empty")
    mix_rng = random.Random(seed)
    bound = []
    for slot, component in enumerate(components):
        component_rng = random.Random((seed << 8) ^ (slot + 1))
        base = segment + slot * SLOT_BYTES
        iterator = _BUILDERS[component.kind](base, component.params, component_rng)
        bound.append((component.weight, iterator))
    return generators.interleave_addresses(bound, mix_rng)


def addresses_to_accesses(
    addresses: Iterator[int],
    n: int,
    write_fraction: float,
    seed: int,
    kind_if_not_write: AccessType = AccessType.READ,
) -> Iterator[Access]:
    """Bound an address stream and assign access kinds."""
    rng = random.Random(seed ^ 0x5EED)
    for address in itertools.islice(addresses, n):
        if write_fraction > 0.0 and rng.random() < write_fraction:
            yield Access(address, AccessType.WRITE)
        else:
            yield Access(address, kind_if_not_write)
