"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random
from typing import Callable

import pytest
from hypothesis import settings

from repro.analysis.sanitizer import SanitizedCache, install_global_sanitizer
from repro.caches.base import Cache
from repro.core.config import BCacheGeometry

# Property tests must not flake in CI: derandomise example generation
# (the searches stay thorough, just reproducible run to run).  Tiered
# profiles let CI trade depth for wall-clock: select one with
# REPRO_HYPOTHESIS_PROFILE (quick/repro/thorough).
settings.register_profile("repro", deadline=None, derandomize=True)
settings.register_profile(
    "quick", deadline=None, derandomize=True, max_examples=20
)
settings.register_profile(
    "thorough", deadline=None, derandomize=True, max_examples=400
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "repro"))

# Shadow-check every cache the suite builds (lenient mode: structural,
# accounting and stable-residency invariants; see docs/analysis.md).
# Disable with REPRO_SANITIZE=0 to time the models unchecked.
if os.environ.get("REPRO_SANITIZE", "1") not in {"0", "off", "no"}:
    install_global_sanitizer(check_interval=256)


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_store(tmp_path_factory: pytest.TempPathFactory):
    """Point the process-wide trace store at a per-session temp dir.

    Keeps test runs from writing blobs into the user's real cache
    directory and from reading stale blobs left by earlier runs.
    """
    from repro.engine.trace_store import TraceStore, set_default_store

    previous = set_default_store(
        TraceStore(tmp_path_factory.mktemp("trace-store"), fsync=False)
    )
    yield
    set_default_store(previous)


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_root(tmp_path_factory: pytest.TempPathFactory):
    """Point the resilience journal root at a per-session temp dir.

    Tests that pass ``run_id=`` without an explicit ``run_root`` must
    never journal into the user's real ``~/.cache`` runs directory.
    """
    previous = os.environ.get("REPRO_RUN_ROOT")
    os.environ["REPRO_RUN_ROOT"] = str(tmp_path_factory.mktemp("run-root"))
    yield
    if previous is None:
        os.environ.pop("REPRO_RUN_ROOT", None)
    else:
        os.environ["REPRO_RUN_ROOT"] = previous


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Reset telemetry state around every test.

    The obs tier is derived from ``$REPRO_OBS`` lazily and the metrics
    registry is process-global (the serve ``status`` op reads restart
    counters from it), so a test that calls ``obs.configure`` or runs a
    server must not leak spans, counters or an open event log into the
    next test.
    """
    from repro.obs import events as obs_events
    from repro.obs.metrics import MetricsRegistry, set_default_registry

    obs_events.reset()
    previous = set_default_registry(MetricsRegistry())
    yield
    obs_events.reset()
    set_default_registry(previous)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def sanitize() -> Callable[..., SanitizedCache]:
    """Factory wrapping a cache in a strict per-access sanitizer."""

    def _wrap(cache: Cache, **kwargs: object) -> SanitizedCache:
        kwargs.setdefault("check_interval", 64)
        return SanitizedCache(cache, **kwargs)  # type: ignore[arg-type]

    return _wrap


@pytest.fixture
def headline_geometry() -> BCacheGeometry:
    """The paper's headline design point: 16 kB, MF=8, BAS=8."""
    return BCacheGeometry(16 * 1024, 32, mapping_factor=8, associativity=8)


@pytest.fixture
def toy_geometry() -> BCacheGeometry:
    """The Section 2.2 worked example: 8 sets, 1-byte lines, MF=2, BAS=2."""
    return BCacheGeometry(8, 1, mapping_factor=2, associativity=2)
