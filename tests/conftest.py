"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings

from repro.core.config import BCacheGeometry

# Property tests must not flake in CI: derandomise example generation
# (the searches stay thorough, just reproducible run to run).
settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def headline_geometry() -> BCacheGeometry:
    """The paper's headline design point: 16 kB, MF=8, BAS=8."""
    return BCacheGeometry(16 * 1024, 32, mapping_factor=8, associativity=8)


@pytest.fixture
def toy_geometry() -> BCacheGeometry:
    """The Section 2.2 worked example: 8 sets, 1-byte lines, MF=2, BAS=2."""
    return BCacheGeometry(8, 1, mapping_factor=2, associativity=2)
