# lint-path: src/repro/caches/example.py
class BrokenCache(Cache):
    def _access_block(self, block: int, is_write: bool) -> int:
        return 0
