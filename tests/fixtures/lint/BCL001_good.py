# lint-path: src/repro/caches/example.py
class GoodCache(Cache):
    def _access_block(self, block: int, is_write: bool) -> int:
        return 0

    def _probe_block(self, block: int) -> bool:
        return False

    def _flush_state(self) -> None:
        pass
