# lint-path: src/repro/caches/example.py
class SneakyCache(SetAssociativeCache):
    def access(self, address, is_write=False):
        return None
