# lint-path: src/repro/caches/example.py
class FastCache(SetAssociativeCache):
    def _batch_trace(self, addresses, kinds):
        return self.stats
