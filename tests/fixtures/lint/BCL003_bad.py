# lint-path: src/repro/caches/example.py
@dataclass(frozen=True)
class Point:
    x: int
