# lint-path: src/repro/caches/example.py
@dataclass(frozen=True, slots=True)
class Point:
    x: int
