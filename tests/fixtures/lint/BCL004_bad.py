# lint-path: src/repro/experiments/example.py
import math

bits = int(math.log2(sets))
