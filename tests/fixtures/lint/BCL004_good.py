# lint-path: src/repro/experiments/example.py
bits = log2_exact(sets, "number of sets")
