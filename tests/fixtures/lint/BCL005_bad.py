# lint-path: src/repro/experiments/example.py
import random

value = random.random()
