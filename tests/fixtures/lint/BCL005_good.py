# lint-path: src/repro/experiments/example.py
import random

rng = random.Random(2006)
value = rng.random()
