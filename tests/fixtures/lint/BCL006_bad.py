# lint-path: src/repro/caches/example.py
def decompose_block(self, block: int) -> int:
    return block / self.num_sets
