# lint-path: src/repro/caches/example.py
def set_index(self, row: int, cluster: int) -> int:
    return (cluster * self.num_rows + row) // 1
