# lint-path: src/repro/experiments/example.py
def collect(rows=[]):
    return rows
