# lint-path: src/repro/experiments/example.py
def collect(rows=None):
    return rows if rows is not None else []
