# lint-path: src/repro/caches/example.py
def _probe_block(self, block: int) -> bool:
    return False
