# lint-path: src/repro/caches/example.py
class SlowCache(DirectMappedCache):
    def _batch_trace(self, addresses, kinds):
        for address in addresses:
            result = AccessResult(hit=True, set_index=0)
        return self.stats
