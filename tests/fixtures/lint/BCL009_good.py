# lint-path: src/repro/caches/example.py
class FastCache(DirectMappedCache):
    def _batch_trace(self, addresses, kinds):
        # Lexically under a for, but returns on iteration 1: the block
        # is not on a CFG cycle, so the flow-aware rule stays quiet.
        for address in addresses:
            return AccessResult(hit=True, set_index=0)
        return None
