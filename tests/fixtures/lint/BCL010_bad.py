# lint-path: src/repro/engine/example.py
try:
    risky()
except Exception:
    pass
