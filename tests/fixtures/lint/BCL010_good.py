# lint-path: src/repro/engine/example.py
while True:
    try:
        result = job()
        break
    except ValueError:
        time.sleep(delay)
        continue
