# lint-path: src/repro/serve/example.py
async def handler(reader, writer):
    time.sleep(0.1)
