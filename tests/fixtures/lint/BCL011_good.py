# lint-path: src/repro/serve/example.py
async def handler(reader, writer):
    await asyncio.sleep(0.1)
