# lint-path: src/repro/experiments/example.py
def run(registry):
    span("job.run", key="k")
    registry.counter("jobs_total")
