# lint-path: src/repro/experiments/example.py
def run(registry):
    with span("job.run", key="k"):
        registry.counter("repro_engine_jobs_total")
