# lint-path: src/repro/stats/example.py
import time


class Recorder:
    def finish(self, stats):
        stats.misses = int(time.perf_counter())
