# lint-path: src/repro/stats/example.py
import time


class Recorder:
    def finish(self, stats, journal):
        started = time.perf_counter()
        stats.misses += 1
        journal.record("job", stats, duration=time.perf_counter() - started)
