# lint-path: src/repro/engine/example.py
_PENDING = {}


def _worker_entry(conn):
    _PENDING["job"] = conn
