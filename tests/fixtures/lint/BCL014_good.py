# lint-path: src/repro/engine/example.py
def _worker_entry(conn):
    pending = {}
    pending["job"] = conn
