# lint-path: src/repro/caches/example.py
class WideMaskCache:
    def __init__(self, size: int, line_size: int) -> None:
        self.num_sets = size // line_size
        self._tags = [-1] * self.num_sets

    def _access_block(self, block: int, is_write: bool) -> int:
        # Deliberately widened index mask: one bit too many.
        index = block & (2 * self.num_sets - 1)
        return self._tags[index]
