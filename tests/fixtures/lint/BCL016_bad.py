# lint-path: src/repro/caches/example.py
from multiprocessing.shared_memory import SharedMemory


class LeakyExporter:
    def export(self, blob):
        segment = SharedMemory(name="seg", create=True, size=len(blob))
        segment.buf[: len(blob)] = blob
        return segment.name


class ObjectBatch(DirectMappedCache):
    def _batch_trace(self, addresses, kinds):
        misses = 0
        for address in addresses:
            reference = Access(address=address, kind=0)
            misses += self._access_block(reference.address >> 5)
        self.stats.misses += misses
        return self.stats
