# lint-path: src/repro/caches/example.py
from multiprocessing.shared_memory import SharedMemory


class OwnedExporter:
    def export(self, blob):
        segment = SharedMemory(name="seg", create=True, size=len(blob))
        segment.buf[: len(blob)] = blob
        return segment

    def destroy(self, segment):
        segment.close()
        segment.unlink()


class ColumnarBatch(DirectMappedCache):
    def _batch_trace(self, addresses, kinds):
        misses = 0
        for address in addresses:
            misses += self._access_block(address >> 5)
        self.stats.misses += misses
        return self.stats
