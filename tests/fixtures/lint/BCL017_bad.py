# lint-path: src/repro/engine/cluster.py
async def dispatch(client, jobs):
    return await client.sweep(jobs)
