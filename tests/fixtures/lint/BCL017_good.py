# lint-path: src/repro/engine/cluster.py
async def dispatch(client, jobs):
    return await asyncio.wait_for(client.sweep(jobs), timeout=30.0)
