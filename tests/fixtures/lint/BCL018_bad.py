# lint-path: src/repro/experiments/example.py
def execute_job(job, store):
    return run(job.spec, job.benchmark, job.debug_level)


def lookup(cache, job):
    return cache.get(job_hash(f"{job.spec}:{job.benchmark}"))
