# lint-path: src/repro/experiments/example.py
def execute_job(job, store):
    return run(job.spec, job.benchmark, job.seed)


def lookup(cache, job):
    return cache.get(job_hash(job))
