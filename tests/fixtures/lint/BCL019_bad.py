# lint-path: src/repro/serve/example.py
"""Spans that drop the request trace; an id minted from the clock."""
import time

from repro.obs import events as obs_events
from repro.obs.tracectx import TraceContext


async def handle(payload):
    with obs_events.span("serve.request"):
        TraceContext.new(f"serve/{time.time()}")
        return {"ok": True}
