# lint-path: src/repro/serve/example.py
"""Spans thread the request trace; ids derive from deterministic keys."""
import os

from repro.obs import events as obs_events
from repro.obs.tracectx import TraceContext


async def handle(payload, trace):
    with obs_events.span("serve.request", trace=trace):
        TraceContext.new(f"serve/{os.getpid()}/{payload['id']}")
        return {"ok": True}
