# lint-path: src/repro/experiments/example.py
import random

rng = random.Random()  # noqa: BCL005
value = random.random()  # noqa
