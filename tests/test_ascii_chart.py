"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.experiments.ascii_chart import grouped_bars, horizontal_bars


class TestHorizontalBars:
    def test_basic_rendering(self):
        text = horizontal_bars({"2way": 20.0, "8way": 40.0}, width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 5  # 20/40 of width 10
        assert lines[1].count("#") == 10

    def test_title(self):
        text = horizontal_bars({"a": 1.0}, title="T")
        assert text.splitlines()[0] == "T"

    def test_values_printed(self):
        text = horizontal_bars({"a": 12.34})
        assert "12.3%" in text

    def test_custom_unit(self):
        text = horizontal_bars({"a": 2.0}, unit="x")
        assert "2.0x" in text

    def test_negative_values_marked(self):
        text = horizontal_bars({"a": -10.0, "b": 10.0}, width=10)
        assert "<" in text.splitlines()[0]
        assert "#" in text.splitlines()[1]

    def test_zero_scale_safe(self):
        text = horizontal_bars({"a": 0.0})
        assert "0.0%" in text

    def test_shared_max(self):
        text = horizontal_bars({"a": 5.0}, width=10, max_value=10.0)
        assert text.count("#") == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bars({})

    def test_labels_aligned(self):
        text = horizontal_bars({"ab": 1.0, "abcdef": 2.0})
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestGroupedBars:
    def test_groups_rendered(self):
        text = grouped_bars(
            ["gzip", "mcf"],
            {"2way": {"gzip": 10.0, "mcf": 2.0}, "8way": {"gzip": 30.0, "mcf": 3.0}},
        )
        assert "gzip" in text and "mcf" in text
        assert text.count("2way") == 2

    def test_shared_scale(self):
        text = grouped_bars(
            ["a", "b"],
            {"s": {"a": 50.0, "b": 25.0}},
            width=10,
        )
        blocks = text.split("\n\n")
        assert blocks[0].count("#") == 10
        assert blocks[1].count("#") == 5

    def test_missing_value_defaults_zero(self):
        text = grouped_bars(["a", "b"], {"s": {"a": 10.0}})
        assert "0.0%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bars([], {"s": {}})
        with pytest.raises(ValueError):
            grouped_bars(["a"], {})


class TestPanelChart:
    def test_reduction_panel_chart(self):
        from repro.experiments.common import ExperimentScale
        from repro.experiments.missrate_figures import run_panel

        scale = ExperimentScale(data_n=3000, instr_n=3000, instructions=1000)
        panel = run_panel(("gzip",), "data", scale, specs=("2way", "mf8_bas8"))
        chart = panel.render_chart()
        assert "2way" in chart and "#" in chart
