"""Unit tests for the B-Cache itself: the three PD scenarios of
Section 2.3, the worked example of Section 2.2, and bookkeeping."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.set_associative import SetAssociativeCache
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry


@pytest.fixture
def toy(toy_geometry) -> BCache:
    """Section 2.2's cache: 8 sets, 1-byte lines, MF=2, BAS=2."""
    return BCache(toy_geometry, policy="lru")


class TestWorkedExample:
    """Figure 1 (c) and the Section 2.3 narrative, address for address."""

    SEQUENCE = (0, 1, 8, 9, 0, 1, 8, 9)

    def test_matches_two_way_cache(self, toy):
        """'The B-Cache exhibits the same hit rate as the 2-way cache
        for this example.'"""
        bcache_hits = [toy.access(a).hit for a in self.SEQUENCE]
        twoway = SetAssociativeCache(8, 1, ways=2)
        twoway_hits = [twoway.access(a).hit for a in self.SEQUENCE]
        assert bcache_hits == twoway_hits
        assert bcache_hits == [False] * 4 + [True] * 4

    def test_direct_mapped_never_hits(self):
        dm = DirectMappedCache(8, 1)
        assert not any(dm.access(a).hit for a in self.SEQUENCE)

    def test_address_25_pd_hit_forces_victim(self, toy):
        """Scenario 2: address 25 (11001) PD-hits and must replace 9."""
        for address in self.SEQUENCE:
            toy.access(address)
        result = toy.access(25)
        assert not result.hit
        assert result.pd_hit
        assert result.evicted == 9
        toy.check_integrity()

    def test_address_13_pd_miss_uses_policy(self, toy):
        """Scenario 3: address 13 (1101) misses both cache and PD; the
        victim comes from the replacement policy."""
        for address in self.SEQUENCE:
            toy.access(address)
        result = toy.access(13)
        assert not result.hit
        assert not result.pd_hit
        # LRU among the candidates {1, 9}: 1 was referenced before 9.
        assert result.evicted == 1
        toy.check_integrity()


class TestScenarios:
    def test_cold_start_programs_pd(self, toy):
        result = toy.access(0)
        assert not result.hit and not result.pd_hit
        assert toy.decoder.occupancy() > 0.0

    def test_hit_after_fill(self, toy):
        toy.access(5)
        result = toy.access(5)
        assert result.hit

    def test_pd_hit_miss_counted(self, toy):
        for address in (0, 1, 8, 9):
            toy.access(address)
        toy.access(25)
        assert toy.stats.pd_hit_misses >= 1

    def test_pd_miss_miss_counted(self, toy):
        toy.access(0)
        assert toy.stats.pd_miss_misses == 1

    def test_pd_hit_rate_during_miss(self, toy):
        for address in (0, 1, 8, 9):
            toy.access(address)
        toy.access(25)  # PD-hit miss
        assert 0.0 < toy.pd_hit_rate_during_miss < 1.0


class TestHeadlineBehaviour:
    def test_conflicting_blocks_coexist(self, headline_geometry):
        """Eight blocks at way-size stride (distinct PIs) all fit."""
        cache = BCache(headline_geometry)
        blocks = [i * 16 * 1024 + 0x40 for i in range(8)]
        for address in blocks:
            cache.access(address)
        assert all(cache.access(a).hit for a in blocks)
        cache.check_integrity()

    def test_pd_blind_conflicts_behave_like_dm(self, headline_geometry):
        """Blocks whose PI bits agree (stride 2^17 shares T2..T0 and the
        index) force PD-hit misses: the B-Cache cannot fix them
        (the wupwise effect, Figure 3)."""
        cache = BCache(headline_geometry)
        stride = (16 * 1024) * 8  # 2^17
        a, b = 0x40, 0x40 + stride
        cache.access(a)
        result = cache.access(b)
        assert not result.hit and result.pd_hit
        result = cache.access(a)
        assert not result.hit and result.pd_hit

    def test_eviction_address_reconstruction(self, headline_geometry):
        cache = BCache(headline_geometry)
        cache.access(0x123468)
        stride = 16 * 1024 * 8
        result = cache.access(0x123468 + stride)
        assert result.evicted == 0x123460  # block-aligned original

    def test_dirty_writeback(self, headline_geometry):
        cache = BCache(headline_geometry)
        cache.access(0x40, is_write=True)
        result = cache.access(0x40 + 16 * 1024 * 8)
        assert result.evicted_dirty

    def test_write_hit_marks_dirty(self, headline_geometry):
        cache = BCache(headline_geometry)
        cache.access(0x40)
        cache.access(0x40, is_write=True)
        result = cache.access(0x40 + 16 * 1024 * 8)
        assert result.evicted_dirty


class TestDegenerateEquivalence:
    """Section 3.1: MF = 1 or BAS = 1 is equivalent to direct-mapped."""

    @pytest.mark.parametrize("mf,bas", [(1, 1), (1, 8), (8, 1)])
    def test_miss_count_matches_dm(self, mf, bas):
        import random

        rng = random.Random(7)
        geometry = BCacheGeometry(2 * 1024, 32, mapping_factor=mf, associativity=bas)
        bcache = BCache(geometry)
        dm = DirectMappedCache(2 * 1024, 32)
        for _ in range(3000):
            address = rng.randrange(1 << 18)
            bcache.access(address)
            dm.access(address)
        assert bcache.stats.misses == dm.stats.misses
        bcache.check_integrity()


class TestProbeAndFlush:
    def test_contains(self, toy):
        toy.access(3)
        assert toy.contains(3)
        assert not toy.contains(11)

    def test_flush(self, toy):
        toy.access(3)
        toy.flush()
        assert not toy.contains(3)
        assert toy.decoder.occupancy() == 0.0
        assert toy.stats.accesses == 0

    def test_integrity_after_flush(self, toy):
        toy.access(3)
        toy.flush()
        toy.check_integrity()


class TestPolicies:
    @pytest.mark.parametrize("policy", ["lru", "random", "fifo", "plru"])
    def test_all_policies_work(self, headline_geometry, policy):
        import random

        rng = random.Random(11)
        cache = BCache(headline_geometry, policy=policy)
        for _ in range(5000):
            cache.access(rng.randrange(1 << 22))
        cache.check_integrity()
        assert cache.stats.accesses == 5000
