"""Unit tests for BCacheGeometry: the MF/BAS/PI/NPI derivations."""

import pytest

from repro.core.config import BCacheGeometry


class TestHeadlineGeometry:
    """The paper's 16 kB MF=8 BAS=8 design (Sections 3.1-3.2)."""

    def test_dimensions(self, headline_geometry):
        g = headline_geometry
        assert g.original_index_bits == 9
        assert g.npi_bits == 6
        assert g.pi_bits == 6
        assert g.num_rows == 64
        assert g.num_clusters == 8
        assert g.num_sets == 512

    def test_decoder_extension_is_three_bits(self, headline_geometry):
        """Contribution 1: 'increase the decoder length ... by three bits'."""
        assert headline_geometry.decoder_extension_bits == 3

    def test_tag_shrinks_by_three_bits(self, headline_geometry):
        # 32-bit address - 5 offset - 9 index = 18-bit tag, minus 3 -> 15.
        assert headline_geometry.stored_tag_bits == 15

    def test_mapping_factor_formula(self, headline_geometry):
        """MF = 2^(PI+NPI) / 2^OI (Section 3.1)."""
        g = headline_geometry
        assert 2 ** (g.pi_bits + g.npi_bits) // 2**g.original_index_bits == 8

    def test_bas_formula(self, headline_geometry):
        """BAS = 2^OI / 2^NPI (Section 3.1)."""
        g = headline_geometry
        assert 2**g.original_index_bits // 2**g.npi_bits == 8


class TestValidation:
    def test_non_power_of_two_mf(self):
        with pytest.raises(ValueError):
            BCacheGeometry(16 * 1024, 32, mapping_factor=3)

    def test_non_power_of_two_bas(self):
        with pytest.raises(ValueError):
            BCacheGeometry(16 * 1024, 32, associativity=6)

    def test_bas_exceeding_sets(self):
        with pytest.raises(ValueError):
            BCacheGeometry(256, 32, associativity=16)

    def test_mf_exceeding_tag_bits(self):
        with pytest.raises(ValueError):
            BCacheGeometry(16 * 1024, 32, mapping_factor=2**19)

    def test_size_line_mismatch(self):
        with pytest.raises(ValueError):
            BCacheGeometry(1000, 32)

    def test_degenerate_detection(self):
        assert BCacheGeometry(512, 32, 1, 8).is_degenerate()
        assert BCacheGeometry(512, 32, 8, 1).is_degenerate()
        assert not BCacheGeometry(512, 32, 2, 2).is_degenerate()


class TestAddressDecomposition:
    def test_round_trip(self, headline_geometry):
        g = headline_geometry
        for block in (0, 1, 0x12345, 0x7FFFFFF):
            row, pi, tag = g.decompose_block(block)
            assert g.compose_block(row, pi, tag) == block

    def test_field_ranges(self, headline_geometry):
        g = headline_geometry
        row, pi, tag = g.decompose_block(0xFFFFFFF)
        assert 0 <= row < g.num_rows
        assert 0 <= pi < 2**g.pi_bits
        assert tag >= 0

    def test_pi_includes_index_and_tag_bits(self, headline_geometry):
        """PI covers I8..I6 plus T2..T0 (Figure 2)."""
        g = headline_geometry
        # Two blocks differing only in bit 6 (I6 of the block address's
        # index field) must differ in PI.
        _, pi_a, _ = g.decompose_block(0b1000000)
        _, pi_b, _ = g.decompose_block(0b0000000)
        assert pi_a != pi_b
        # Two blocks differing only in block bit 9 (T0) differ in PI too.
        _, pi_c, _ = g.decompose_block(1 << 9)
        assert pi_c != pi_b

    def test_set_index_layout(self, headline_geometry):
        g = headline_geometry
        assert g.set_index(0, 0) == 0
        assert g.set_index(0, 1) == g.num_rows
        assert g.set_index(g.num_rows - 1, g.num_clusters - 1) == g.num_sets - 1

    def test_describe_mentions_parameters(self, headline_geometry):
        text = headline_geometry.describe()
        assert "MF=8" in text and "BAS=8" in text and "PI=6" in text


class TestAlternateGeometries:
    @pytest.mark.parametrize("mf,bas,pd", [(2, 8, 4), (4, 4, 4), (8, 8, 6), (16, 4, 6)])
    def test_pd_length(self, mf, bas, pd):
        """PD length = log2(MF) + log2(BAS) (Section 6.3's design points)."""
        g = BCacheGeometry(16 * 1024, 32, mf, bas)
        assert g.pi_bits == pd

    def test_8kb_and_32kb(self):
        for size in (8 * 1024, 32 * 1024):
            g = BCacheGeometry(size, 32, 8, 8)
            assert g.num_rows * g.num_clusters == size // 32
