"""Per-benchmark behavioural properties, parametrized over all 26.

Each synthetic profile encodes documented paper facts; this module
checks the encoding holds for *every* benchmark, not just the handful
the shape tests sample.
"""

import pytest

from repro.caches import make_cache
from repro.workloads import (
    ALL_BENCHMARKS,
    CFP2K,
    CINT2K,
    QUIET_ICACHE,
    REPORTED_ICACHE,
    SPEC2K,
)

N_DATA = 8_000
N_INSTR = 12_000
SEED = 11

#: Benchmarks the paper singles out as uniform-miss / capacity-bound.
UNIFORM_MISS = ("art", "lucas", "swim", "mcf")
#: Benchmarks whose D$ B-Cache(MF=8) trails the 4-way (Section 4.3.2).
PD_BLINDED = ("wupwise", "facerec", "galgel", "sixtrack")


@pytest.fixture(scope="module")
def data_runs():
    """Miss rates of dm/4way/8way/mf8_bas8 on every benchmark's D-stream."""
    runs = {}
    for name in ALL_BENCHMARKS:
        addresses = SPEC2K[name].data_addresses(N_DATA, seed=SEED)
        rates = {}
        for spec in ("dm", "4way", "8way", "mf8_bas8"):
            cache = make_cache(spec)
            for address in addresses:
                cache.access(address)
            rates[spec] = cache.miss_rate
        runs[name] = rates
    return runs


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestEveryBenchmark:
    def test_baseline_miss_rate_plausible(self, data_runs, name):
        """Every profile produces a nonzero, sub-60% DM miss rate."""
        assert 0.005 < data_runs[name]["dm"] < 0.60

    def test_associativity_never_catastrophic(self, data_runs, name):
        """8-way is never worse than the baseline (beyond noise)."""
        assert data_runs[name]["8way"] <= data_runs[name]["dm"] * 1.05

    def test_bcache_bounded_by_baseline(self, data_runs, name):
        assert data_runs[name]["mf8_bas8"] <= data_runs[name]["dm"] * 1.05

    def test_deterministic_traces(self, name):
        profile = SPEC2K[name]
        assert profile.data_addresses(200, seed=3) == profile.data_addresses(
            200, seed=3
        )


@pytest.mark.parametrize("name", UNIFORM_MISS)
def test_uniform_miss_benchmarks_resist_associativity(data_runs, name):
    """Section 6.4: these four improve <~12% under everything."""
    dm = data_runs[name]["dm"]
    assert data_runs[name]["8way"] > dm * 0.85


@pytest.mark.parametrize("name", PD_BLINDED)
def test_pd_blinded_benchmarks_trail_4way(data_runs, name):
    """Section 4.3.2: B-Cache(MF=8) below the 4-way on these D-streams."""
    assert data_runs[name]["mf8_bas8"] > data_runs[name]["4way"]


@pytest.mark.parametrize("name", [n for n in ALL_BENCHMARKS
                                  if n not in UNIFORM_MISS + PD_BLINDED])
def test_conflict_benchmarks_gain_from_bcache(data_runs, name):
    """All remaining benchmarks see a real B-Cache reduction."""
    dm = data_runs[name]["dm"]
    assert data_runs[name]["mf8_bas8"] < dm * 0.92


@pytest.mark.parametrize("name", QUIET_ICACHE)
def test_quiet_icache_benchmarks(name):
    """Section 4.2: these eleven have negligible I$ miss rates."""
    cache = make_cache("dm")
    for address in SPEC2K[name].instr_addresses(N_INSTR, seed=SEED):
        cache.access(address)
    assert cache.miss_rate < 0.02


@pytest.mark.parametrize("name", REPORTED_ICACHE)
def test_reported_icache_benchmarks_have_conflicts(name):
    """The fifteen reported benchmarks show I$ misses that an 8-way
    cache substantially reduces."""
    addresses = SPEC2K[name].instr_addresses(N_INSTR, seed=SEED)
    dm = make_cache("dm")
    eight = make_cache("8way")
    for address in addresses:
        dm.access(address)
        eight.access(address)
    assert dm.miss_rate > 0.004
    assert eight.miss_rate < dm.miss_rate


def test_suite_partition_counts():
    assert len(CINT2K) == 12 and len(CFP2K) == 14
