"""The fault-tolerant fleet coordinator (``repro.engine.cluster``).

Unit classes cover the circuit breaker and coordinator bookkeeping;
the e2e classes drive real ``bcache-serve`` subprocesses over Unix
sockets and assert the tentpole guarantee — merged fleet results are
bit-identical to a serial local run through node faults, a SIGKILLed
node, an entirely-dead fleet (local fallback), and a SIGKILLed
coordinator resumed from its journal.
"""

from __future__ import annotations

import contextlib
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine.cluster import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ClusterConfig,
    ClusterCoordinator,
    main,
    run_cluster_sweep,
)
from repro.engine.faultinject import FaultPlan
from repro.engine.resilience import ResultJournal, RetryPolicy
from repro.engine.runner import SweepJob, run_sweep
from repro.engine.trace_store import TraceStore

SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces", fsync=False)


def small_sweep(n: int = 2000) -> list[SweepJob]:
    return [
        SweepJob(spec=spec, benchmark=benchmark, n=n)
        for spec in ("dm", "2way")
        for benchmark in ("gzip", "equake", "mcf")
    ]


FAST = ClusterConfig(
    connect_timeout=2.0,
    probe_timeout=2.0,
    request_timeout=60.0,
    probe_interval=0.02,
    idle_tick=0.01,
    max_node_failures=2,
    breaker_failures=2,
    breaker_reset=0.05,
    retry=RetryPolicy(max_attempts=4, base_delay=0.005, max_delay=0.02),
    fsync=False,
)


def _env(tmp_path: Path) -> dict[str, str]:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_TRACE_STORE"] = str(tmp_path / "traces")
    return env


def _start_server(tmp_path: Path, name: str):
    """Start ``bcache-serve`` on a Unix socket; wait for its ready line."""
    sock_path = tmp_path / f"{name}.sock"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--unix", str(sock_path),
         "--shards", "1"],
        env=_env(tmp_path),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
    )
    ready = proc.stdout.readline()
    if "ready" not in ready:
        proc.kill()
        pytest.fail(f"server {name} did not come up: {ready!r}")
    return proc, f"unix:{sock_path}"


def _stop(proc: subprocess.Popen) -> None:
    with contextlib.suppress(ProcessLookupError):
        proc.terminate()
    with contextlib.suppress(subprocess.TimeoutExpired):
        proc.wait(timeout=20)
    with contextlib.suppress(ProcessLookupError):
        proc.kill()


@pytest.fixture
def fleet(tmp_path):
    """Two live ``bcache-serve`` nodes; yields (procs, addresses)."""
    proc_a, addr_a = _start_server(tmp_path, "a")
    proc_b, addr_b = _start_server(tmp_path, "b")
    try:
        yield [proc_a, proc_b], [addr_a, addr_b]
    finally:
        _stop(proc_a)
        _stop(proc_b)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == OPEN
        assert not breaker.ready(3.1)

    def test_half_open_after_reset_then_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert breaker.ready(1.5)  # exactly one probe lets through
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_half_open_failure_reopens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=1.0)
        for _ in range(5):
            breaker.record_failure(0.0)
        assert breaker.ready(2.0) and breaker.state == HALF_OPEN
        breaker.record_failure(2.0)  # one failure, well under threshold
        assert breaker.state == OPEN
        assert breaker.opened_at == 2.0

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state == CLOSED


class TestCoordinatorValidation:
    def test_empty_address_list_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterCoordinator([" ", ""])

    def test_duplicate_addresses_deduplicated(self):
        coordinator = ClusterCoordinator(["unix:/a", "unix:/a", "unix:/b"])
        assert [node.address for node in coordinator.nodes] == [
            "unix:/a", "unix:/b",
        ]

    def test_conflicting_run_id_and_resume_rejected(self):
        coordinator = ClusterCoordinator(["unix:/a"], config=FAST)
        with pytest.raises(ValueError, match="aliases"):
            coordinator.run(small_sweep()[:1], run_id="x", resume="y")


class TestFleetSweep:
    def test_two_node_sweep_matches_serial_run(self, fleet, tmp_path, store):
        _, addresses = fleet
        jobs = small_sweep()
        coordinator = ClusterCoordinator(addresses, config=FAST, store=store)
        results = coordinator.run(jobs)
        assert results == run_sweep(jobs, workers=1, store=store)
        summary = coordinator.summary()
        assert summary["nodes_up"] == 2
        assert summary["fallback_jobs"] == 0
        completed = [entry["completed"] for entry in summary["nodes"].values()]
        assert sum(completed) >= len(jobs)  # duplicates may add to this
        # The probe propagated the satellite status fields.
        for entry in summary["nodes"].values():
            assert entry["protocol_version"] == 1
            assert entry["cpus_usable"] >= 1

    def test_node_down_injection_redispatches_bit_identically(
        self, fleet, tmp_path, store
    ):
        _, addresses = fleet
        jobs = small_sweep()
        plan = FaultPlan.parse("node_down@0,node_flaky@1")
        coordinator = ClusterCoordinator(addresses, config=FAST, store=store)
        results = coordinator.run(jobs, fault_plan=plan)
        assert results == run_sweep(jobs, workers=1, store=store)
        summary = coordinator.summary()
        assert summary["redispatch_total"] > 0
        # node_down kills exactly one node for the rest of the sweep.
        assert summary["nodes_up"] == 1

    def test_sigkill_one_node_mid_sweep_stays_bit_identical(
        self, fleet, tmp_path, store
    ):
        procs, addresses = fleet
        jobs = small_sweep(n=120_000)
        killer = threading.Timer(
            0.4, lambda: os.killpg(procs[1].pid, signal.SIGKILL)
        )
        killer.start()
        try:
            results = run_cluster_sweep(
                jobs, addresses, config=FAST, store=store
            )
        finally:
            killer.cancel()
        # Whether the kill landed mid-batch or between batches, the
        # merged statistics must match a serial run exactly.
        assert results == run_sweep(jobs, workers=1, store=store)


class TestLocalFallback:
    def test_all_nodes_down_falls_back_bit_identically(self, tmp_path, store):
        addresses = [f"unix:{tmp_path}/ghost-a.sock", f"unix:{tmp_path}/ghost-b.sock"]
        jobs = small_sweep()[:4]
        coordinator = ClusterCoordinator(addresses, config=FAST, store=store)
        results = coordinator.run(jobs)
        assert results == run_sweep(jobs, workers=1, store=store)
        summary = coordinator.summary()
        assert summary["nodes_up"] == 0
        assert summary["fallback_jobs"] == len(jobs)


class TestJournal:
    def test_journal_records_node_attribution(self, tmp_path, store):
        addresses = [f"unix:{tmp_path}/ghost.sock"]
        jobs = small_sweep()[:2]
        run_cluster_sweep(
            jobs, addresses, config=FAST, store=store,
            run_id="attributed", run_root=tmp_path / "runs",
        )
        journal = ResultJournal(tmp_path / "runs" / "attributed")
        assert len(journal.completed) == len(jobs)
        text = (tmp_path / "runs" / "attributed" / "journal.jsonl").read_text()
        assert '"node":"local"' in text

    def test_resume_replays_from_journal_without_nodes(self, tmp_path, store):
        """A fully-journaled run resumes instantly even with no fleet."""
        jobs = small_sweep()[:3]
        run_root = tmp_path / "runs"
        first = run_cluster_sweep(
            jobs, [f"unix:{tmp_path}/ghost.sock"], config=FAST, store=store,
            run_id="done", run_root=run_root,
        )
        coordinator = ClusterCoordinator(
            [f"unix:{tmp_path}/ghost.sock"], config=FAST, store=store
        )
        resumed = coordinator.run(jobs, resume="done", run_root=run_root)
        assert resumed == first
        assert coordinator.summary()["fallback_jobs"] == 0

    def test_sigkill_coordinator_resumes_bit_identically(self, tmp_path, store):
        """SIGKILL the coordinator mid-journal; resume completes the run."""
        jobs = [
            SweepJob(spec=spec, benchmark=benchmark, n=200_000)
            for spec in ("dm", "2way")
            for benchmark in ("gzip", "equake", "mcf")
        ]
        run_root = tmp_path / "runs"
        child_code = """
import sys
from repro.engine.cluster import ClusterConfig, run_cluster_sweep
from repro.engine.resilience import RetryPolicy
from repro.engine.runner import SweepJob
from repro.engine.trace_store import TraceStore, set_default_store

store_root, run_root, ghost = sys.argv[1], sys.argv[2], sys.argv[3]
set_default_store(TraceStore(store_root, fsync=False))
jobs = [
    SweepJob(spec=spec, benchmark=benchmark, n=200_000)
    for spec in ("dm", "2way")
    for benchmark in ("gzip", "equake", "mcf")
]
config = ClusterConfig(
    connect_timeout=1.0, probe_timeout=1.0, probe_interval=0.02,
    idle_tick=0.01, max_node_failures=2, breaker_failures=2,
    breaker_reset=0.05,
    retry=RetryPolicy(max_attempts=4, base_delay=0.005, max_delay=0.02),
    fsync=False,
)
run_cluster_sweep(
    jobs, [ghost], config=config, run_id="killed", run_root=run_root
)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.Popen(
            [sys.executable, "-c", child_code, str(store.root),
             str(run_root), f"unix:{tmp_path}/ghost.sock"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        journal_path = run_root / "killed" / "journal.jsonl"
        try:
            deadline = time.monotonic() + 120.0
            # Wait for the header plus at least one fallback-journaled
            # job, then SIGKILL while later jobs are still running.
            while time.monotonic() < deadline:
                if (
                    journal_path.is_file()
                    and journal_path.read_text().count("\n") >= 2
                ):
                    break
                assert proc.poll() is None, "coordinator exited pre-kill"
                time.sleep(0.01)
            else:
                pytest.fail("journal never reached the pre-kill state")
        finally:
            with contextlib.suppress(ProcessLookupError):
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        journaled = len(ResultJournal(run_root / "killed").completed)
        assert 1 <= journaled < len(jobs)  # genuinely killed mid-run

        resumed = run_cluster_sweep(
            jobs, [f"unix:{tmp_path}/ghost.sock"], config=FAST, store=store,
            resume="killed", run_root=run_root,
        )
        assert resumed == run_sweep(jobs, workers=1, store=store)
        assert len(ResultJournal(run_root / "killed").completed) == len(jobs)


class TestCli:
    def test_bad_fault_dsl_exits_two(self, tmp_path, capsys):
        code = main([
            "--connect", f"unix:{tmp_path}/ghost.sock",
            "--inject-faults", "bogus@0",
        ])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_fallback_verify_and_expectations(self, tmp_path, capsys):
        code = main([
            "--connect", f"unix:{tmp_path}/ghost.sock",
            "--benchmarks", "gzip", "--specs", "dm,2way", "--n", "1500",
            "--verify", "--expect-fallback", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
        assert "fallback_jobs=2" in out

    def test_unmet_expectation_exits_one(self, tmp_path, capsys):
        code = main([
            "--connect", f"unix:{tmp_path}/ghost.sock",
            "--benchmarks", "gzip", "--specs", "dm", "--n", "1500",
            "--expect-redispatch", "1",
        ])
        assert code == 1
        assert "redispatch_total=0" in capsys.readouterr().err
