"""Unit tests for the prior-art organisations: column-associative,
skewed-associative and highly associative (HAC) caches."""

import random

import pytest

from repro.caches.column_associative import ColumnAssociativeCache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.hac import HighlyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.skewed_associative import SkewedAssociativeCache


class TestColumnAssociative:
    def test_conflicting_pair_coexists(self):
        cache = ColumnAssociativeCache(512, 32)
        cache.access(0x0)
        cache.access(0x200)  # rehashes into the flipped-MSB set
        assert cache.access(0x0).hit
        assert cache.access(0x200).hit

    def test_second_probe_hit_swaps(self):
        cache = ColumnAssociativeCache(512, 32)
        cache.access(0x0)
        cache.access(0x200)  # 0x0 pushed to secondary slot? no: 0x200 misses both, settles primary
        cache.access(0x0)
        before = cache.second_probe_hits
        cache.access(0x0)  # after swap, first-probe hit
        assert cache.second_probe_hits == before
        assert cache.first_probe_hits >= 1

    def test_slow_hit_fraction_tracks_second_probes(self):
        cache = ColumnAssociativeCache(512, 32)
        for address in (0x0, 0x200, 0x0, 0x200):
            cache.access(address)
        assert 0.0 < cache.slow_hit_fraction <= 1.0

    def test_beats_direct_mapped_on_pairs(self):
        rng = random.Random(3)
        addresses = [rng.choice((0x0, 0x4000)) + 0x40 for _ in range(500)]
        ca = ColumnAssociativeCache(16 * 1024, 32)
        dm = DirectMappedCache(16 * 1024, 32)
        for address in addresses:
            ca.access(address)
            dm.access(address)
        assert ca.miss_rate < dm.miss_rate / 4

    def test_rehash_slot_replaced_directly(self):
        cache = ColumnAssociativeCache(512, 32)
        cache.access(0x0)
        cache.access(0x200)   # 0x0 stays primary; 0x200 primary=0, rehash 0x0? -> check misses
        # The detailed path: just assert the cache never double-counts.
        assert cache.stats.misses == 2

    def test_probe_and_flush(self):
        cache = ColumnAssociativeCache(512, 32)
        cache.access(0xAA0)
        assert cache.contains(0xAA0)
        cache.flush()
        assert not cache.contains(0xAA0)
        assert cache.first_probe_hits == 0


class TestSkewedAssociative:
    def test_skew_functions_differ_between_ways(self):
        cache = SkewedAssociativeCache(16 * 1024, 32, ways=2)
        # Blocks conflicting in way 0 should mostly not conflict in way 1.
        blocks = [i * cache.sets_per_way for i in range(1, 9)]
        way0 = {cache.skew_index(b, 0) for b in blocks}
        way1 = {cache.skew_index(b, 1) for b in blocks}
        assert len(way0) == 1  # aligned blocks collide in way 0
        assert len(way1) > 4  # but scatter in way 1

    def test_conflicting_pair_coexists(self):
        cache = SkewedAssociativeCache(512, 32, ways=2)
        cache.access(0x0)
        cache.access(0x200)
        assert cache.access(0x0).hit
        assert cache.access(0x200).hit

    def test_better_than_2way_on_high_degree_conflicts(self):
        """Skewing disperses conflicts a 2-way cache cannot hold."""
        rng = random.Random(5)
        addresses = [
            rng.choice(range(6)) * 16 * 1024 + 0x40 for _ in range(4000)
        ]
        skew = SkewedAssociativeCache(16 * 1024, 32, ways=2)
        twoway = SetAssociativeCache(16 * 1024, 32, ways=2)
        for address in addresses:
            skew.access(address)
            twoway.access(address)
        assert skew.miss_rate < twoway.miss_rate

    def test_eviction_reports_block_address(self):
        cache = SkewedAssociativeCache(512, 32, ways=2)
        cache.access(0x0, is_write=True)
        evicted = None
        address = 0x200
        while evicted is None:
            result = cache.access(address)
            evicted = result.evicted
            address += 0x200
        assert evicted % 32 == 0

    def test_flush(self):
        cache = SkewedAssociativeCache(512, 32, ways=2)
        cache.access(0x123)
        cache.flush()
        assert not cache.contains(0x123)


class TestHAC:
    def test_cam_width_matches_paper(self):
        """Section 6.7: 16 kB HAC needs 23 + 3 = 26 CAM bits."""
        hac = HighlyAssociativeCache(16 * 1024, 32, subarray_size=1024)
        assert hac.cam_tag_bits == 23
        assert hac.cam_entry_bits == 26

    def test_geometry(self):
        hac = HighlyAssociativeCache(16 * 1024)
        assert hac.ways == 32
        assert hac.num_subarrays == 16
        assert hac.num_sets == 16

    def test_behaves_as_32way(self):
        hac = HighlyAssociativeCache(16 * 1024)
        # 10 blocks conflicting at way-size stride coexist easily.
        blocks = [i * 16 * 1024 + 0x40 for i in range(10)]
        for address in blocks:
            hac.access(address)
        assert all(hac.access(a).hit for a in blocks)

    def test_invalid_subarray_size(self):
        with pytest.raises(ValueError):
            HighlyAssociativeCache(16 * 1024, subarray_size=1000)
