"""Columnar batch kernels: numpy ≡ stdlib ≡ per-access, bit for bit.

:mod:`repro.caches.columnar` adds an optional numpy fast path on top of
the columnar batch representation.  The pure-stdlib loop stays the
canonical kernel, so these tests pin three invariants for every factory
spec: the numpy path (when available) produces statistics identical to
the stdlib path, both match a per-access replay, and every fallback
precondition (``REPRO_NUMPY=off``, short batches, >= 2**63 addresses)
lands the batch on the stdlib loop rather than changing the answer.

Reuses the spec list and stream generators of
``test_engine_equivalence`` — this file covers the *kernel selection*
axis, that one covers the batch-vs-scalar axis.
"""

from __future__ import annotations

from array import array

import pytest

from repro.caches import columnar, make_cache
from repro.caches.columnar import ENV_NUMPY, MIN_VECTOR_LEN
from test_engine_equivalence import (
    ALL_SPECS,
    mixed_trace,
    real_kernels,  # noqa: F401 - fixture re-export
    scalar_stats,
)

#: True when this process can actually run the vectorised kernels
#: (numpy importable and not disabled — the stdlib-only CI job sets
#: ``REPRO_NUMPY=off`` and skips the numpy legs below).
HAVE_NUMPY = columnar.numpy_enabled()

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy absent or disabled via REPRO_NUMPY"
)


def stdlib_trace(monkeypatch, spec: str, addresses, kinds, **kwargs):
    """Stats from the pure-stdlib batch kernel (numpy gated off)."""
    monkeypatch.setenv(ENV_NUMPY, "off")
    cache = make_cache(spec, **kwargs)
    cache.access_trace(addresses, kinds)
    assert cache.last_kernel == "stdlib"
    monkeypatch.delenv(ENV_NUMPY)
    return cache


class TestThreeWayEquivalence:
    """scalar == stdlib batch == numpy batch, across every spec."""

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_mixed_stream(self, spec, real_kernels, monkeypatch):
        addresses, kinds = mixed_trace(3000, seed=19)
        assert len(addresses) >= MIN_VECTOR_LEN  # vector path engages
        expected = scalar_stats(spec, addresses, kinds, seed=3)
        stdlib = stdlib_trace(monkeypatch, spec, addresses, kinds, seed=3)
        assert stdlib.stats == expected
        if HAVE_NUMPY:
            vectorised = make_cache(spec, seed=3)
            assert vectorised.access_trace(addresses, kinds) == expected

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_reads_only(self, spec, real_kernels, monkeypatch):
        addresses, _ = mixed_trace(2048, seed=29)
        expected = scalar_stats(spec, addresses, None, seed=7)
        stdlib = stdlib_trace(monkeypatch, spec, addresses, None, seed=7)
        assert stdlib.stats == expected
        if HAVE_NUMPY:
            vectorised = make_cache(spec, seed=7)
            assert vectorised.access_trace(addresses) == expected

    @pytest.mark.parametrize("seed", (2, 3, 5, 7, 11))
    def test_dm_many_seeds(self, seed, real_kernels, monkeypatch):
        """The fully-vectorised dm kernel, hammered across streams."""
        addresses, kinds = mixed_trace(4096, seed=seed)
        expected = scalar_stats("dm", addresses, kinds)
        stdlib = stdlib_trace(monkeypatch, "dm", addresses, kinds)
        assert stdlib.stats == expected
        if HAVE_NUMPY:
            vectorised = make_cache("dm")
            assert vectorised.access_trace(addresses, kinds) == expected
            assert vectorised.last_kernel == "numpy"

    @requires_numpy
    def test_dm_internal_state_matches(self, real_kernels, monkeypatch):
        """Not just stats: resident tags and dirty bits agree too."""
        addresses, kinds = mixed_trace(3000, seed=37)
        stdlib = stdlib_trace(monkeypatch, "dm", addresses, kinds)
        vectorised = make_cache("dm")
        vectorised.access_trace(addresses, kinds)
        assert vectorised._tags == stdlib._tags
        assert vectorised._dirty == stdlib._dirty
        assert vectorised.stats.set_hits == stdlib.stats.set_hits
        assert vectorised.stats.set_misses == stdlib.stats.set_misses

    @requires_numpy
    def test_split_batches_across_kernels(self, real_kernels, monkeypatch):
        """numpy batch then stdlib batch == one scalar replay."""
        addresses, kinds = mixed_trace(4000, seed=41)
        expected = scalar_stats("dm", addresses, kinds)
        cache = make_cache("dm")
        cache.access_trace(addresses[:2000], kinds[:2000])
        assert cache.last_kernel == "numpy"
        monkeypatch.setenv(ENV_NUMPY, "off")
        cache.access_trace(addresses[2000:], kinds[2000:])
        assert cache.last_kernel == "stdlib"
        assert cache.stats == expected


class TestKernelSelection:
    def test_env_gate_disables_numpy(self, monkeypatch):
        monkeypatch.setenv(ENV_NUMPY, "off")
        assert columnar.get_numpy() is None
        assert columnar.numpy_enabled() is False

    @requires_numpy
    def test_env_gate_is_per_call(self, monkeypatch):
        assert columnar.numpy_enabled() is True
        monkeypatch.setenv(ENV_NUMPY, "0")
        assert columnar.numpy_enabled() is False
        monkeypatch.delenv(ENV_NUMPY)
        assert columnar.numpy_enabled() is True

    @requires_numpy
    def test_short_batch_stays_on_stdlib(self, real_kernels):
        addresses, kinds = mixed_trace(MIN_VECTOR_LEN - 1, seed=13)
        cache = make_cache("dm")
        cache.access_trace(addresses, kinds)
        assert cache.last_kernel == "stdlib"

    @requires_numpy
    def test_wide_addresses_fall_back(self, real_kernels):
        """Addresses at or above 2**63 collide with the tag sentinel;
        the vectorised kernel must refuse them, not mis-simulate."""
        addresses = [(1 << 63) + i * 64 for i in range(MIN_VECTOR_LEN)]
        expected = scalar_stats("dm", addresses, None)
        cache = make_cache("dm")
        assert columnar.dm_batch(cache, addresses, None) is False
        assert cache.access_trace(addresses) == expected
        assert cache.last_kernel == "stdlib"

    @requires_numpy
    def test_dm_selects_numpy_at_threshold(self, real_kernels):
        addresses, _ = mixed_trace(MIN_VECTOR_LEN, seed=17)
        cache = make_cache("dm")
        cache.access_trace(addresses)
        assert cache.last_kernel == "numpy"


class TestColumnarInputs:
    """Buffer-backed columns (the trace-store hand-off) work everywhere."""

    @pytest.mark.parametrize("spec", ("dm", "8way", "mf8_bas8"))
    def test_array_and_memoryview_columns(self, spec, real_kernels):
        address_list, kind_list = mixed_trace(2048, seed=47)
        expected = scalar_stats(spec, address_list, kind_list)
        address_col = array("Q", address_list)
        kind_col = array("B", kind_list)
        from_arrays = make_cache(spec)
        assert from_arrays.access_trace(address_col, kind_col) == expected
        from_views = make_cache(spec)
        assert (
            from_views.access_trace(
                memoryview(address_col).toreadonly(),
                memoryview(kind_col).toreadonly(),
            )
            == expected
        )

    @requires_numpy
    def test_block_columns_match_scalar_math(self):
        addresses = array("Q", (i * 97 % (1 << 24) for i in range(2000)))
        result = columnar.block_columns(
            addresses, offset_bits=5, index_mask=0x7F, num_sets=128
        )
        assert result is not None
        blocks, counts = result
        assert blocks == [address >> 5 for address in addresses]
        for set_index in range(128):
            expected = sum(1 for b in blocks if b & 0x7F == set_index)
            assert int(counts[set_index]) == expected

    @requires_numpy
    def test_vector_helpers_decline_short_batches(self):
        addresses = array("Q", range(MIN_VECTOR_LEN - 1))
        assert (
            columnar.block_columns(addresses, 5, 0x7F, 128) is None
        )
        assert columnar.shifted_blocks(addresses, 5) is None

    @requires_numpy
    def test_shifted_blocks_match_scalar_math(self):
        addresses = array("Q", (i * 1031 % (1 << 30) for i in range(1500)))
        blocks = columnar.shifted_blocks(addresses, 6)
        assert blocks == [address >> 6 for address in addresses]
