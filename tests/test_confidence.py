"""Tests for the cross-seed statistics helpers."""

import pytest

from repro.stats.confidence import Estimate, estimate, replicate


class TestEstimate:
    def test_single_value(self):
        e = estimate([0.5])
        assert e.mean == 0.5 and e.stdev == 0.0 and e.n == 1
        assert e.stderr == 0.0

    def test_mean_and_stdev(self):
        e = estimate([1.0, 2.0, 3.0])
        assert e.mean == pytest.approx(2.0)
        assert e.stdev == pytest.approx(1.0)
        assert e.stderr == pytest.approx(1.0 / 3**0.5)

    def test_confidence_interval_contains_mean(self):
        e = estimate([1.0, 2.0, 3.0, 4.0])
        low, high = e.confidence_interval()
        assert low < e.mean < high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate([])

    def test_overlap_detection(self):
        a = Estimate(mean=1.0, stdev=0.1, n=10)
        b = Estimate(mean=1.02, stdev=0.1, n=10)
        c = Estimate(mean=5.0, stdev=0.1, n=10)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert c.clearly_above(a)
        assert not b.clearly_above(a)


class TestReplicate:
    def test_evaluates_per_seed(self):
        calls = []

        def metric(seed: int) -> float:
            calls.append(seed)
            return float(seed)

        e = replicate(metric, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert e.mean == pytest.approx(2.0)

    def test_miss_rate_stability_across_seeds(self):
        """The reproduction's orderings should not be seed artefacts."""
        from repro.caches import make_cache
        from repro.workloads import SPEC2K

        def reduction(seed: int) -> float:
            addresses = SPEC2K["equake"].data_addresses(8_000, seed=seed)
            dm = make_cache("dm")
            bc = make_cache("mf8_bas8")
            for address in addresses:
                dm.access(address)
                bc.access(address)
            return (dm.miss_rate - bc.miss_rate) / dm.miss_rate

        e = replicate(reduction, [1, 2, 3, 4])
        zero = Estimate(mean=0.0, stdev=0.0, n=1)
        assert e.clearly_above(zero)
        assert e.stdev < 0.15  # stable across seeds
