"""Unit tests for the analytic out-of-order timing model."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.cpu.timing import OoOProcessorModel, ProcessorConfig
from repro.hierarchy.memory_system import MemoryHierarchy
from repro.trace.access import Access, AccessType


def _model(**config_kwargs) -> OoOProcessorModel:
    hierarchy = MemoryHierarchy(
        l1i=DirectMappedCache(512, 32),
        l1d=DirectMappedCache(512, 32),
    )
    return OoOProcessorModel(hierarchy, ProcessorConfig(**config_kwargs))


class TestProcessorConfig:
    def test_defaults_match_table4(self):
        config = ProcessorConfig()
        assert config.issue_width == 4
        assert config.window_size == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(issue_width=0)
        with pytest.raises(ValueError):
            ProcessorConfig(base_cpi=0)
        with pytest.raises(ValueError):
            ProcessorConfig(data_exposure=1.5)


class TestExecution:
    def test_perfect_cache_ipc_is_inverse_base_cpi(self):
        model = _model(base_cpi=0.5)
        # Warm up one instruction block, then run hits only.
        trace = [Access(0x400000, AccessType.IFETCH)] * 5000
        result = model.run(trace)
        # One cold ifetch miss; its stall is small next to 5000 instrs.
        assert result.ipc == pytest.approx(2.0, rel=0.1)

    def test_cycles_formula(self):
        model = _model(base_cpi=1.0, ifetch_exposure=1.0, data_exposure=1.0)
        trace = [
            Access(0x400000, AccessType.IFETCH),  # cold: 1 + 106 latency
            Access(0x1000, AccessType.READ),      # cold: 1 + 106 latency
        ]
        result = model.run(trace)
        assert result.instructions == 1
        assert result.cycles == pytest.approx(1 * 1.0 + 106 + 106)

    def test_exposure_scales_data_stalls(self):
        full = _model(base_cpi=1.0, data_exposure=1.0)
        half = _model(base_cpi=1.0, data_exposure=0.5)
        trace = [
            Access(0x400000, AccessType.IFETCH),
            Access(0x1000, AccessType.READ),
        ]
        full_result = full.run(trace)
        half_result = half.run(trace)
        assert half_result.data_stall_cycles == pytest.approx(
            full_result.data_stall_cycles / 2
        )

    def test_miss_rates_surface_in_result(self):
        model = _model()
        trace = [Access(0x400000, AccessType.IFETCH), Access(0x1000, AccessType.READ)]
        result = model.run(trace)
        assert result.l1i_miss_rate == 1.0
        assert result.l1d_miss_rate == 1.0

    def test_cpi_inverse_of_ipc(self):
        model = _model()
        result = model.run([Access(0x400000, AccessType.IFETCH)] * 10)
        assert result.cpi == pytest.approx(1.0 / result.ipc)

    def test_fewer_misses_means_higher_ipc(self):
        """The coupling the whole Figure 8 study rests on."""
        thrash = _model()
        quiet = _model()
        # Thrashing data stream vs resident data stream.
        thrash_trace = []
        quiet_trace = []
        for i in range(300):
            thrash_trace.append(Access(0x400000, AccessType.IFETCH))
            quiet_trace.append(Access(0x400000, AccessType.IFETCH))
            thrash_trace.append(Access((i % 2) * 0x200 + 0x1000, AccessType.READ))
            quiet_trace.append(Access(0x1000, AccessType.READ))
        assert quiet.run(quiet_trace).ipc > thrash.run(thrash_trace).ipc

    def test_empty_trace(self):
        result = _model().run([])
        assert result.instructions == 0
        assert result.ipc == 0.0
