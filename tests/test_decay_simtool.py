"""Tests for the cache-decay analysis and the bcache-sim front end."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.energy.decay import simulate_decay
from repro.simtool import main as sim_main
from repro.trace.access import Access, AccessType
from repro.trace.trace_file import save_trace


class TestDecayAnalysis:
    def test_tight_reuse_is_all_live(self):
        cache = DirectMappedCache(512, 32)
        addresses = [0x40] * 100
        report = simulate_decay(cache, addresses, decay_window=10)
        assert report.decay_induced_misses == 0
        assert report.dead_time_fraction == 0.0

    def test_long_gaps_are_dead_time(self):
        # Large cache: the filler blocks never evict A, so A's second
        # reference would have hit — the decay window destroys it.
        cache = DirectMappedCache(16 * 1024, 32)
        addresses = [0x40] + [0x1000 + i * 32 for i in range(50)] + [0x40]
        report = simulate_decay(cache, addresses, decay_window=10)
        assert report.decay_induced_misses == 1
        assert report.dead_time > 0

    def test_window_controls_cost(self):
        def run(window):
            cache = DirectMappedCache(512, 32)
            addresses = ([0x40] + [0x1000 + i * 32 for i in range(8)]) * 30
            return simulate_decay(cache, addresses, decay_window=window)

        aggressive = run(2)
        relaxed = run(1000)
        assert aggressive.decay_induced_misses > relaxed.decay_induced_misses
        assert aggressive.dead_time_fraction > relaxed.dead_time_fraction

    def test_evicted_blocks_not_charged(self):
        cache = DirectMappedCache(512, 32)
        # A and B conflict: every re-reference is a real miss, never a
        # decay-induced one.
        addresses = [0x40, 0x240] * 50
        report = simulate_decay(cache, addresses, decay_window=1)
        assert report.decay_induced_misses == 0

    def test_validation(self):
        cache = DirectMappedCache(512, 32)
        with pytest.raises(ValueError):
            simulate_decay(cache, [0x40], decay_window=0)

    def test_report_fractions_on_empty(self):
        cache = DirectMappedCache(512, 32)
        report = simulate_decay(cache, [], decay_window=10)
        assert report.induced_miss_fraction == 0.0
        assert report.dead_time_fraction == 0.0


class TestSimTool:
    def test_synthetic_benchmark_run(self, capsys):
        status = sim_main(
            ["--benchmark", "gzip", "--n", "2000", "dm", "mf8_bas8"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "dm" in out and "mf8_bas8" in out
        assert "2000 accesses" in out

    def test_trace_file_run(self, tmp_path, capsys):
        path = tmp_path / "t.din"
        save_trace(
            [Access(0x40, AccessType.READ), Access(0x40, AccessType.WRITE)], path
        )
        status = sim_main(["--trace", str(path), "dm"])
        assert status == 0
        assert "50.000%" in capsys.readouterr().out

    def test_balance_flag(self, capsys):
        status = sim_main(
            ["--benchmark", "equake", "--n", "3000", "dm", "--balance"]
        )
        assert status == 0
        assert "balance:" in capsys.readouterr().out

    def test_instr_side(self, capsys):
        status = sim_main(
            ["--benchmark", "gcc", "--side", "instr", "--n", "2000", "dm"]
        )
        assert status == 0

    def test_bad_spec_reports_error(self, capsys):
        status = sim_main(["--benchmark", "gzip", "--n", "500", "bogus"])
        assert status == 2
        assert "error" in capsys.readouterr().err

    def test_missing_trace_file(self, capsys):
        status = sim_main(["--trace", "/nonexistent.din", "dm"])
        assert status == 1

    def test_custom_geometry(self, capsys):
        status = sim_main(
            ["--benchmark", "gzip", "--n", "1000", "--size", "8192", "dm"]
        )
        assert status == 0


class TestSimToolJSON:
    def test_json_output_parses(self, capsys):
        import json

        status = sim_main(
            ["--benchmark", "gzip", "--n", "1500", "--json", "dm", "mf8_bas8"]
        )
        assert status == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trace_length"] == 1500
        assert set(data["configs"]) == {"dm", "mf8_bas8"}
        assert 0.0 < data["configs"]["dm"]["miss_rate"] < 1.0

    def test_json_with_balance(self, capsys):
        import json

        status = sim_main(
            ["--benchmark", "equake", "--n", "2000", "--json", "--balance", "dm"]
        )
        assert status == 0
        data = json.loads(capsys.readouterr().out)
        assert "balance" in data["configs"]["dm"]
        assert 0.0 <= data["configs"]["dm"]["balance"]["frequent_miss_share"] <= 1.0

    def test_json_bad_spec(self, capsys):
        status = sim_main(["--benchmark", "gzip", "--n", "200", "--json", "zzz"])
        assert status == 2


class TestStatsAsDict:
    def test_round_trips_through_json(self):
        import json

        from repro.caches import make_cache

        cache = make_cache("mf8_bas8")
        for i in range(500):
            cache.access(i * 64, is_write=(i % 4 == 0))
        payload = json.loads(json.dumps(cache.stats.as_dict()))
        assert payload["accesses"] == 500
        assert payload["hits"] + payload["misses"] == 500
        assert payload["reads"] + payload["writes"] == 500
