"""Unit tests for the programmable decoder bank."""

import pytest

from repro.core.decoder import DecoderIntegrityError, ProgrammableDecoderBank


@pytest.fixture
def bank() -> ProgrammableDecoderBank:
    return ProgrammableDecoderBank(num_rows=4, num_clusters=2, pi_bits=3)


class TestSearch:
    def test_cold_bank_misses(self, bank):
        assert not bank.search(0, 0b101).hit

    def test_programmed_value_found(self, bank):
        bank.program(0, 1, 0b101)
        match = bank.search(0, 0b101)
        assert match.hit and match.cluster == 1

    def test_search_is_per_row(self, bank):
        bank.program(0, 0, 0b101)
        assert not bank.search(1, 0b101).hit

    def test_search_counts(self, bank):
        bank.search(0, 0)
        bank.search(1, 1)
        assert bank.searches == 2


class TestProgram:
    def test_reprogram_replaces_old_value(self, bank):
        bank.program(0, 0, 0b001)
        bank.program(0, 0, 0b010)
        assert not bank.search(0, 0b001).hit
        assert bank.search(0, 0b010).hit

    def test_same_value_same_cluster_is_noop(self, bank):
        bank.program(0, 0, 0b001)
        bank.program(0, 0, 0b001)
        assert bank.search(0, 0b001).cluster == 0

    def test_duplicate_value_rejected(self, bank):
        """Uniqueness: 'The two PIs must be different to maintain unique
        address decoding' (Figure 1)."""
        bank.program(0, 0, 0b001)
        with pytest.raises(DecoderIntegrityError):
            bank.program(0, 1, 0b001)

    def test_same_value_in_other_row_allowed(self, bank):
        bank.program(0, 0, 0b001)
        bank.program(1, 0, 0b001)  # different row: fine

    def test_value_width_checked(self, bank):
        with pytest.raises(ValueError):
            bank.program(0, 0, 0b1000)

    def test_program_counts(self, bank):
        bank.program(0, 0, 1)
        bank.program(0, 1, 2)
        assert bank.programs == 2


class TestInvalidate:
    def test_invalidate_frees_value(self, bank):
        bank.program(0, 0, 0b011)
        bank.invalidate(0, 0)
        assert not bank.search(0, 0b011).hit
        bank.program(0, 1, 0b011)  # value is reusable

    def test_invalidate_idempotent(self, bank):
        bank.invalidate(0, 0)
        bank.invalidate(0, 0)

    def test_invalid_clusters(self, bank):
        assert bank.invalid_clusters(0) == [0, 1]
        bank.program(0, 0, 1)
        assert bank.invalid_clusters(0) == [1]

    def test_flush(self, bank):
        bank.program(0, 0, 1)
        bank.program(2, 1, 3)
        bank.flush()
        assert bank.occupancy() == 0.0


class TestIntegrity:
    def test_clean_bank_passes(self, bank):
        bank.program(0, 0, 1)
        bank.program(0, 1, 2)
        bank.check_integrity()

    def test_corruption_detected(self, bank):
        bank.program(0, 0, 1)
        bank.program(0, 1, 2)
        # Corrupt internals directly to simulate a fault.
        bank._values[0][1] = 1
        with pytest.raises(DecoderIntegrityError):
            bank.check_integrity()

    def test_stale_reverse_map_detected(self, bank):
        bank.program(0, 0, 1)
        bank._lookup[0][5] = 1
        with pytest.raises(DecoderIntegrityError):
            bank.check_integrity()

    def test_occupancy(self, bank):
        assert bank.occupancy() == 0.0
        bank.program(0, 0, 1)
        assert bank.occupancy() == pytest.approx(1 / 8)


class TestValueAt:
    def test_value_at(self, bank):
        assert bank.value_at(0, 0) is None
        bank.program(0, 0, 5)
        assert bank.value_at(0, 0) == 5
        assert bank.is_valid(0, 0)
        assert not bank.is_valid(0, 1)


class TestConstruction:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ProgrammableDecoderBank(0, 1, 1)
        with pytest.raises(ValueError):
            ProgrammableDecoderBank(1, 0, 1)
        with pytest.raises(ValueError):
            ProgrammableDecoderBank(1, 1, -1)
