"""Unit tests for the direct-mapped baseline cache."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache


@pytest.fixture
def cache() -> DirectMappedCache:
    # 16 sets x 32 B lines = 512 B.
    return DirectMappedCache(512, 32)


class TestGeometry:
    def test_baseline_dimensions(self):
        baseline = DirectMappedCache(16 * 1024, 32)
        assert baseline.num_sets == 512
        assert baseline.index_bits == 9
        assert baseline.offset_bits == 5

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            DirectMappedCache(500, 32)
        with pytest.raises(ValueError):
            DirectMappedCache(512, 33)


class TestAccessBehaviour:
    def test_first_access_misses(self, cache):
        assert not cache.access(0x1000).hit

    def test_second_access_hits(self, cache):
        cache.access(0x1000)
        assert cache.access(0x1000).hit

    def test_same_block_different_offset_hits(self, cache):
        cache.access(0x1000)
        assert cache.access(0x101F).hit

    def test_conflicting_addresses_thrash(self, cache):
        # 0x0 and 0x200 map to set 0 of a 512 B cache.
        cache.access(0x0)
        result = cache.access(0x200)
        assert not result.hit
        assert result.evicted == 0x0

    def test_worked_example_sequence(self):
        """Section 2.2: 0,1,8,9 thrash an 8-set direct-mapped cache."""
        cache = DirectMappedCache(8, 1)
        hits = [cache.access(a).hit for a in (0, 1, 8, 9, 0, 1, 8, 9)]
        assert hits == [False] * 8

    def test_eviction_reports_correct_address(self, cache):
        cache.access(0x1040)
        result = cache.access(0x1040 + 512)
        assert result.evicted == 0x1040

    def test_no_eviction_on_cold_fill(self, cache):
        assert cache.access(0x40).evicted is None


class TestDirtyTracking:
    def test_clean_eviction(self, cache):
        cache.access(0x0, is_write=False)
        result = cache.access(0x200)
        assert result.evicted is not None and not result.evicted_dirty

    def test_dirty_eviction(self, cache):
        cache.access(0x0, is_write=True)
        result = cache.access(0x200)
        assert result.evicted_dirty

    def test_write_hit_marks_dirty(self, cache):
        cache.access(0x0)
        cache.access(0x0, is_write=True)
        assert cache.access(0x200).evicted_dirty

    def test_writeback_counted(self, cache):
        cache.access(0x0, is_write=True)
        cache.access(0x200)
        assert cache.stats.writebacks == 1


class TestProbeAndFlush:
    def test_contains(self, cache):
        cache.access(0x1000)
        assert cache.contains(0x1010)
        assert not cache.contains(0x2000)

    def test_contains_has_no_side_effects(self, cache):
        cache.access(0x1000)
        before = cache.stats.accesses
        cache.contains(0x1000)
        assert cache.stats.accesses == before

    def test_flush_clears_contents_and_stats(self, cache):
        cache.access(0x1000)
        cache.flush()
        assert not cache.contains(0x1000)
        assert cache.stats.accesses == 0


class TestStats:
    def test_miss_rate(self, cache):
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x0)
        assert cache.miss_rate == pytest.approx(1 / 3)

    def test_per_set_counters(self, cache):
        cache.access(0x0)
        cache.access(0x20)
        assert cache.stats.set_accesses[0] == 1
        assert cache.stats.set_accesses[1] == 1

    def test_read_write_split(self, cache):
        cache.access(0x0, is_write=True)
        cache.access(0x20, is_write=False)
        assert cache.stats.writes == 1
        assert cache.stats.reads == 1

    def test_pd_stats_trivial_for_conventional(self, cache):
        # A fixed decoder always selects a set, so every miss counts as
        # a "PD hit" miss: the rate is identically 1.0 (no prediction).
        cache.access(0x0)
        assert cache.stats.pd_hit_misses == 1
        assert cache.stats.pd_hit_rate_during_miss == 1.0
