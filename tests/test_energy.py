"""Unit tests for the circuit models: the paper's published numbers."""

import pytest

from repro.core.config import BCacheGeometry
from repro.energy.area import (
    bcache_storage,
    conventional_storage,
    set_associative_area_overhead,
)
from repro.energy.cacti_lite import (
    EnergyBreakdown,
    conventional_access_energy,
    fully_associative_probe_energy,
)
from repro.energy.cam import CAMBankSpec, pd_banks_for
from repro.energy.decoder_timing import (
    all_have_slack,
    cam_search_delay_ns,
    table1_timings,
)
from repro.energy.model import (
    RunActivity,
    SystemEnergyModel,
    access_energy_for,
    bcache_access_energy,
)
from repro.energy.technology import TSMC018

HEADLINE = BCacheGeometry(16 * 1024, 32, 8, 8)


class TestCAMCalibration:
    def test_6x8_matches_paper(self):
        """Section 5.4: 'A 6x8 ... CAM decoder consumes 0.78pJ'."""
        assert TSMC018.cam_search_energy_pj(6, 8) == pytest.approx(0.78, abs=0.01)

    def test_6x16_matches_paper(self):
        """Section 5.4: '... and 6x16 ... 1.62pJ per search'."""
        assert TSMC018.cam_search_energy_pj(6, 16) == pytest.approx(1.62, abs=0.01)

    def test_energy_scales_with_bits(self):
        assert TSMC018.cam_search_energy_pj(12, 8) == pytest.approx(
            2 * TSMC018.cam_search_energy_pj(6, 8)
        )

    def test_bank_spec(self):
        bank = CAMBankSpec(count=32, bits=6, entries=16)
        assert bank.cells == 32 * 96
        assert bank.search_energy_pj() == pytest.approx(32 * 1.62, rel=0.01)

    def test_pd_banks_headline(self):
        """Section 3.2: thirty-two 6x16 (data) + sixty-four 6x8 (tag)."""
        data, tag = pd_banks_for(HEADLINE)
        assert (data.count, data.bits, data.entries) == (32, 6, 16)
        assert (tag.count, tag.bits, tag.entries) == (64, 6, 8)


class TestTable2Storage:
    def test_baseline_bits(self):
        """Table 2: 20bit x 512 tag + 256bit x 512 data."""
        storage = conventional_storage(16 * 1024)
        assert storage.tag_memory_bits == 20 * 512
        assert storage.data_memory_bits == 256 * 512

    def test_bcache_tag_shrinks(self):
        """Table 2: B-Cache tag memory is 17bit x 512."""
        storage = bcache_storage(HEADLINE)
        assert storage.tag_memory_bits == 17 * 512

    def test_overhead_is_4_3_percent(self):
        """Section 5.3: 'increases the total cache area ... by 4.3%'."""
        overhead = bcache_storage(HEADLINE).overhead_vs(conventional_storage(16 * 1024))
        assert overhead == pytest.approx(0.043, abs=0.002)

    def test_less_than_4way_overhead(self):
        """Section 5.3: less than a 4-way cache's 7.98%."""
        bc = bcache_storage(HEADLINE).overhead_vs(conventional_storage(16 * 1024))
        assert bc < set_associative_area_overhead(4) == pytest.approx(0.0798)

    def test_cam_counts_as_1_25_sram_bits(self):
        storage = bcache_storage(HEADLINE)
        # 32 x 6x16 CAMs = 3072 cells -> 3840 bit equivalents.
        assert storage.data_decoder_bits == pytest.approx(3072 * 1.25)


class TestTable3Energy:
    def test_bcache_overhead_is_10_5_percent(self):
        """Section 5.4: 'power consumption of the B-Cache is 10.5% higher'."""
        base = conventional_access_energy(16 * 1024).total_pj
        bc = bcache_access_energy(HEADLINE).total_pj
        assert bc / base - 1 == pytest.approx(0.105, abs=0.005)

    @pytest.mark.parametrize("ways,below", [(2, 0.174), (4, 0.444), (8, 0.655)])
    def test_bcache_below_set_associative(self, ways, below):
        """Section 5.4: 17.4%, 44.4%, 65.5% lower than 2/4/8-way."""
        bc = bcache_access_energy(HEADLINE).total_pj
        sa = conventional_access_energy(16 * 1024, ways=ways).total_pj
        assert 1 - bc / sa == pytest.approx(below, abs=0.02)

    def test_energy_monotone_in_ways(self):
        energies = [
            conventional_access_energy(16 * 1024, ways=w).total_pj
            for w in (1, 2, 4, 8, 32)
        ]
        assert energies == sorted(energies)

    def test_breakdown_totals(self):
        breakdown = EnergyBreakdown({"a": 1.0, "b": 2.0})
        assert breakdown.total_pj == 3.0
        assert breakdown.scaled(2.0).total_pj == 6.0
        assert breakdown.with_component("c", 1.0).total_pj == 4.0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            conventional_access_energy(16 * 1024, ways=0)
        with pytest.raises(ValueError):
            conventional_access_energy(16 * 1024 + 3, ways=2)

    def test_spec_dispatch(self):
        for spec in ("dm", "2way", "8way", "victim16", "mf8_bas8"):
            assert access_energy_for(spec).access_pj > 0
        with pytest.raises(ValueError):
            access_energy_for("column")

    def test_victim_probe_energy(self):
        config = access_energy_for("victim16")
        assert config.miss_probe_pj == pytest.approx(
            fully_associative_probe_energy(16), rel=0.01
        )


class TestTable1Timing:
    def test_all_decoders_have_slack(self):
        """Section 5.1: 'all of the decoders have time slack left'."""
        assert all_have_slack()

    def test_five_subarray_sizes(self):
        timings = table1_timings()
        assert [t.wordlines for t in timings] == [256, 128, 64, 32, 16]
        assert [t.subarray_bytes for t in timings] == [
            8192, 4096, 2048, 1024, 512
        ]

    def test_compositions_match_table1(self):
        timings = {t.address_bits: t for t in table1_timings()}
        assert timings[8].original_composition == "3D-3R"
        assert timings[8].bcache_npd_composition == "3D-2R"
        assert timings[4].bcache_npd_composition == "INV"

    def test_original_decoder_delay_monotone_in_size(self):
        timings = table1_timings()
        delays = [t.original_ns for t in timings]
        assert delays == sorted(delays, reverse=True)

    def test_cam_delay_grows_slowly_when_segmented(self):
        fast = cam_search_delay_ns(6, 8, segmented=True)
        slow = cam_search_delay_ns(6, 64, segmented=True)
        unsegmented = cam_search_delay_ns(6, 64, segmented=False)
        assert slow < unsegmented
        assert slow - fast < 0.2


class TestSystemEnergyModel:
    def _activity(self, cycles=1000.0) -> RunActivity:
        return RunActivity(
            l1i_accesses=1000,
            l1i_misses=10,
            l1i_pd_predicted_misses=0,
            l1d_accesses=400,
            l1d_misses=40,
            l1d_pd_predicted_misses=0,
            l2_accesses=50,
            l2_misses=5,
            cycles=cycles,
        )

    def test_static_calibration_makes_half_of_baseline(self):
        model = SystemEnergyModel(
            l1i=access_energy_for("dm"), l1d=access_energy_for("dm")
        )
        activity = self._activity()
        per_cycle = model.static_pj_per_cycle_for_baseline(activity)
        report = model.report(activity, per_cycle)
        assert report.static_pj == pytest.approx(report.dynamic_pj)

    def test_longer_run_burns_more_static(self):
        model = SystemEnergyModel(
            l1i=access_energy_for("dm"), l1d=access_energy_for("dm")
        )
        per_cycle = model.static_pj_per_cycle_for_baseline(self._activity())
        slow = model.report(self._activity(cycles=2000.0), per_cycle)
        fast = model.report(self._activity(cycles=1000.0), per_cycle)
        assert slow.total_pj > fast.total_pj

    def test_pd_prediction_saves_array_energy(self):
        bcache = access_energy_for("mf8_bas8")
        model = SystemEnergyModel(l1i=bcache, l1d=bcache)
        predicted = RunActivity(
            l1i_accesses=1000, l1i_misses=10, l1i_pd_predicted_misses=8,
            l1d_accesses=400, l1d_misses=40, l1d_pd_predicted_misses=30,
            l2_accesses=50, l2_misses=5, cycles=1000.0,
        )
        unpredicted = RunActivity(
            l1i_accesses=1000, l1i_misses=10, l1i_pd_predicted_misses=0,
            l1d_accesses=400, l1d_misses=40, l1d_pd_predicted_misses=0,
            l2_accesses=50, l2_misses=5, cycles=1000.0,
        )
        assert model.dynamic_pj(predicted) < model.dynamic_pj(unpredicted)

    def test_offchip_dominates(self):
        model = SystemEnergyModel(
            l1i=access_energy_for("dm"), l1d=access_energy_for("dm")
        )
        assert model.offchip_pj == pytest.approx(
            100 * conventional_access_energy(16 * 1024).total_pj
        )
