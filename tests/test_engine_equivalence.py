"""The batch fast path must be bit-identical to the per-access path.

``Cache.access_trace`` (and every ``_batch_trace`` override) exists
purely for speed: for any spec the factory can build and any reference
stream, the resulting :class:`CacheStats` — including the per-set
counters — must equal a per-access ``Cache.access`` replay exactly.

The global test sanitizer reroutes ``access_trace`` through the checked
per-access path, which would make these tests vacuous; the
``real_kernels`` fixture temporarily uninstalls it so the actual batch
kernels run.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.analysis.sanitizer import (
    SanitizedCache,
    global_sanitizer_installed,
    install_global_sanitizer,
    uninstall_global_sanitizer,
)
from repro.caches import make_cache

#: Every spec family the factory understands (see make_cache's docs).
ALL_SPECS = (
    "dm",
    "fa",
    "column",
    "hac",
    "agac",
    "pagecolor",
    "2way",
    "4way",
    "8way",
    "victim4",
    "victim16",
    "mf2_bas2",
    "mf8_bas8",
    "mf16_bas4",
    "skew2",
    "pam2",
    "psa2",
)


@pytest.fixture
def real_kernels():
    """Run the actual batch kernels (not the sanitizer's checked loop)."""
    was_installed = global_sanitizer_installed()
    uninstall_global_sanitizer()
    yield
    if was_installed:
        install_global_sanitizer(check_interval=256)


def mixed_trace(n: int, seed: int) -> tuple[list[int], list[int]]:
    """A seeded read/write stream with reuse, conflicts and strides."""
    rng = random.Random(seed)
    hot = [rng.randrange(0, 1 << 20) for _ in range(32)]
    addresses, kinds = [], []
    for i in range(n):
        roll = rng.random()
        if roll < 0.5:
            address = rng.choice(hot)
        elif roll < 0.8:
            address = (i * 64) % (1 << 18)
        else:
            address = rng.randrange(0, 1 << 26)
        addresses.append(address)
        kinds.append(1 if rng.random() < 0.3 else 0)
    return addresses, kinds


def scalar_stats(spec: str, addresses, kinds, **kwargs):
    cache = make_cache(spec, **kwargs)
    access = cache.access
    if kinds is None:
        for address in addresses:
            access(address)
    else:
        for address, kind in zip(addresses, kinds):
            access(address, kind == 1)
    return cache.stats


class TestBatchEquivalence:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_mixed_stream(self, spec, real_kernels):
        addresses, kinds = mixed_trace(4000, seed=7)
        expected = scalar_stats(spec, addresses, kinds, seed=3)
        cache = make_cache(spec, seed=3)
        assert cache.access_trace(addresses, kinds) == expected

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_reads_only_default(self, spec, real_kernels):
        addresses, _ = mixed_trace(2500, seed=11)
        expected = scalar_stats(spec, addresses, None, seed=1)
        cache = make_cache(spec, seed=1)
        assert cache.access_trace(addresses) == expected

    @pytest.mark.parametrize("spec", ("dm", "8way", "mf8_bas8"))
    def test_random_policy(self, spec, real_kernels):
        addresses, kinds = mixed_trace(3000, seed=23)
        expected = scalar_stats(spec, addresses, kinds, policy="random", seed=9)
        cache = make_cache(spec, policy="random", seed=9)
        assert cache.access_trace(addresses, kinds) == expected

    @pytest.mark.parametrize("spec", ("mf2_bas2", "mf8_bas8"))
    def test_bcache_decoder_counters_match(self, spec, real_kernels):
        addresses, kinds = mixed_trace(3000, seed=5)
        scalar = make_cache(spec)
        for address, kind in zip(addresses, kinds):
            scalar.access(address, kind == 1)
        batch = make_cache(spec)
        batch.access_trace(addresses, kinds)
        assert batch.stats == scalar.stats
        assert batch.decoder.searches == scalar.decoder.searches
        assert batch.decoder.programs == scalar.decoder.programs
        batch.check_integrity()

    @pytest.mark.parametrize("spec", ("pam2", "psa2"))
    def test_way_prediction_counters_match(self, spec, real_kernels):
        """Subclass overrides of ``_access_block`` keep their bookkeeping.

        The set-associative fast kernel never calls ``_access_block``,
        so for these organisations it must defer to the generic kernel
        — otherwise fast/slow-hit accounting silently reads zero.
        """
        addresses, kinds = mixed_trace(3000, seed=41)
        scalar = make_cache(spec)
        for address, kind in zip(addresses, kinds):
            scalar.access(address, kind == 1)
        batch = make_cache(spec)
        batch.access_trace(addresses, kinds)
        assert batch.stats == scalar.stats
        assert batch.fast_hits == scalar.fast_hits > 0
        assert batch.slow_hits == scalar.slow_hits > 0
        if spec == "psa2":
            assert batch.extra_probe_count == scalar.extra_probe_count

    def test_victim_buffer_counters_match(self, real_kernels):
        addresses, kinds = mixed_trace(3000, seed=43)
        scalar = make_cache("victim16")
        for address, kind in zip(addresses, kinds):
            scalar.access(address, kind == 1)
        batch = make_cache("victim16")
        batch.access_trace(addresses, kinds)
        assert batch.stats == scalar.stats
        assert batch.victim_hits == scalar.victim_hits > 0

    @pytest.mark.parametrize("spec", ("dm", "4way", "mf8_bas8"))
    def test_resumable_between_batches(self, spec, real_kernels):
        """Two batch calls == one; the kernel keeps state, not a copy."""
        addresses, kinds = mixed_trace(2000, seed=31)
        whole = make_cache(spec)
        whole.access_trace(addresses, kinds)
        split = make_cache(spec)
        split.access_trace(addresses[:777], kinds[:777])
        split.access_trace(addresses[777:], kinds[777:])
        assert split.stats == whole.stats

    def test_iterables_are_accepted(self, real_kernels):
        addresses, _ = mixed_trace(500, seed=2)
        expected = scalar_stats("dm", addresses, None)
        cache = make_cache("dm")
        assert cache.access_trace(iter(addresses)) == expected

    def test_length_mismatch_rejected(self, real_kernels):
        cache = make_cache("dm")
        with pytest.raises(ValueError, match="kinds"):
            cache.access_trace([0x40, 0x80], [0])

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 1 << 22), st.integers(0, 2)),
            max_size=300,
        ),
        spec=st.sampled_from(("dm", "2way", "8way", "fa", "mf8_bas8", "victim4")),
    )
    def test_property_equivalence(self, data, spec):
        """Batch == scalar for arbitrary streams, any factory spec."""
        was_installed = global_sanitizer_installed()
        uninstall_global_sanitizer()
        try:
            addresses = [address for address, _ in data]
            kinds = [kind for _, kind in data]
            expected = scalar_stats(spec, addresses, kinds)
            cache = make_cache(spec)
            assert cache.access_trace(addresses, kinds) == expected
        finally:
            if was_installed:
                install_global_sanitizer(check_interval=256)


class TestSanitizerComposability:
    @pytest.mark.parametrize("spec", ("dm", "8way", "mf8_bas8"))
    def test_sanitized_wrapper_batch(self, spec, real_kernels):
        """SanitizedCache.access_trace checks every access, same stats."""
        addresses, kinds = mixed_trace(2000, seed=13)
        expected = scalar_stats(spec, addresses, kinds)
        checked = SanitizedCache(make_cache(spec), check_interval=64)
        assert checked.access_trace(addresses, kinds) == expected
        checked.finalize()

    def test_global_hook_intercepts_batch(self):
        """With the hook installed, access_trace runs the checked path.

        (No ``real_kernels`` fixture here on purpose: the suite-wide
        sanitizer is active, and stats must still be identical.)
        """
        if not global_sanitizer_installed():
            pytest.skip("suite runs with REPRO_SANITIZE=0")
        addresses, kinds = mixed_trace(1500, seed=17)
        expected_cache = make_cache("mf8_bas8")
        for address, kind in zip(addresses, kinds):
            expected_cache.access(address, kind == 1)
        cache = make_cache("mf8_bas8")
        assert cache.access_trace(addresses, kinds) == expected_cache.stats
