"""Tests for the process-pool sweep runner."""

from __future__ import annotations

import pytest

from repro.engine.runner import (
    SweepJob,
    available_cpus,
    default_jobs,
    execute_job,
    run_sweep,
)
from repro.engine.trace_store import TraceStore


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces")


def small_sweep() -> list[SweepJob]:
    return [
        SweepJob(spec=spec, benchmark=benchmark, n=2000)
        for spec in ("dm", "2way", "mf8_bas8")
        for benchmark in ("gzip", "equake")
    ]


class TestExecuteJob:
    def test_reads_only_stream(self, store):
        stats = execute_job(SweepJob(spec="dm", benchmark="gzip", n=1500), store=store)
        assert stats.accesses == 1500
        assert stats.writes == 0

    def test_with_kinds_has_writes(self, store):
        stats = execute_job(
            SweepJob(spec="dm", benchmark="gzip", n=1500, with_kinds=True),
            store=store,
        )
        assert stats.accesses == 1500
        assert stats.writes > 0

    def test_deterministic(self, store):
        job = SweepJob(spec="mf8_bas8", benchmark="gcc", n=1200)
        assert execute_job(job, store=store) == execute_job(job, store=store)

    def test_geometry_forwarded(self, store):
        stats = execute_job(
            SweepJob(spec="dm", benchmark="gzip", n=1000, size=8 * 1024),
            store=store,
        )
        assert stats.num_sets == 256

    def test_sanitized_matches_plain(self, store):
        job = SweepJob(spec="mf8_bas8", benchmark="equake", n=1500)
        plain = execute_job(job, store=store)
        checked = execute_job(job, store=store, sanitize=True)
        assert checked == plain


class TestRunSweep:
    def test_serial_order_aligned(self, store):
        sweep = small_sweep()
        results = run_sweep(sweep, workers=1, store=store)
        assert len(results) == len(sweep)
        for job, stats in zip(sweep, results):
            assert stats == execute_job(job, store=store)

    def test_parallel_bit_identical_to_serial(self, store):
        sweep = small_sweep()
        serial = run_sweep(sweep, workers=1, store=store)
        parallel = run_sweep(sweep, workers=2, store=store)
        assert parallel == serial

    def test_parallel_prewarms_store(self, store):
        run_sweep(small_sweep(), workers=2, store=store)
        for benchmark in ("gzip", "equake"):
            assert store.address_path(benchmark, "data", 2000, 2006).is_file()

    def test_sanitize_forces_serial_and_matches(self, store):
        sweep = small_sweep()[:3]
        plain = run_sweep(sweep, workers=4, store=store)
        checked = run_sweep(sweep, workers=4, sanitize=True, store=store)
        assert checked == plain

    def test_single_job_runs_inline(self, store):
        job = SweepJob(spec="dm", benchmark="gzip", n=800)
        [stats] = run_sweep([job], workers=8, store=store)
        assert stats == execute_job(job, store=store)


class TestResilientRouting:
    """run_sweep routes to the resilient engine; depth in test_resilience."""

    def test_resilience_config_matches_plain(self, store):
        from repro.engine.resilience import ResilienceConfig

        sweep = small_sweep()[:3]
        plain = run_sweep(sweep, workers=1, store=store)
        resilient = run_sweep(
            sweep, workers=1, store=store,
            resilience=ResilienceConfig(fsync=False),
        )
        assert resilient == plain

    def test_run_id_creates_journal(self, store, tmp_path):
        run_sweep(
            small_sweep()[:2], workers=1, store=store,
            run_id="routed", run_root=tmp_path,
        )
        assert (tmp_path / "routed" / "journal.jsonl").is_file()
        assert (tmp_path / "routed" / "index.json").is_file()

    def test_run_id_resume_alias_conflict(self, store):
        with pytest.raises(ValueError, match="disagree"):
            run_sweep(
                small_sweep()[:1], store=store, run_id="a", resume="b"
            )


class TestDefaultJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_env_override_capped_by_affinity(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert default_jobs() == min(5, available_cpus())

    def test_oversubscription_clamps_to_affinity(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "9999")
        assert default_jobs() == available_cpus()

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() == 1


class TestAvailableCpus:
    def test_positive(self):
        assert available_cpus() >= 1

    def test_honors_sched_getaffinity(self, monkeypatch):
        import repro.engine.runner as runner_mod

        if not hasattr(runner_mod.os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(
            runner_mod.os, "sched_getaffinity", lambda pid: {0, 1, 2}
        )
        assert available_cpus() == 3

    def test_affinity_failure_falls_back(self, monkeypatch):
        import repro.engine.runner as runner_mod

        def boom(pid):
            raise OSError("no affinity")

        if not hasattr(runner_mod.os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(runner_mod.os, "sched_getaffinity", boom)
        assert available_cpus() >= 1
