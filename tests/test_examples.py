"""Smoke tests: every shipped example runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs as a subprocess with reduced trace lengths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py", "8000")
        assert proc.returncode == 0, proc.stderr
        assert "miss rate" in proc.stdout
        assert "B-Cache" in proc.stdout

    def test_custom_workload(self):
        proc = _run("custom_workload.py", "5000")
        assert proc.returncode == 0, proc.stderr
        assert "mf8_bas8" in proc.stdout
        assert "din format" in proc.stdout

    def test_design_space_exploration(self):
        proc = _run("design_space_exploration.py", "crafty", "8000")
        assert proc.returncode == 0, proc.stderr
        assert "suggested design" in proc.stdout

    def test_design_space_rejects_unknown_benchmark(self):
        proc = _run("design_space_exploration.py", "quake3")
        assert proc.returncode != 0
        assert "unknown benchmark" in proc.stderr

    def test_performance_energy_tradeoff(self):
        proc = _run("performance_energy_tradeoff.py", "equake", "5000")
        assert proc.returncode == 0, proc.stderr
        assert "EDP" in proc.stdout

    def test_pipeline_models(self):
        proc = _run("pipeline_models.py", "gzip", "4000")
        assert proc.returncode == 0, proc.stderr
        assert "window" in proc.stdout

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "custom_workload.py",
            "design_space_exploration.py",
            "performance_energy_tradeoff.py",
            "pipeline_models.py",
        ],
    )
    def test_examples_have_docstrings(self, script):
        source = (EXAMPLES / script).read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""'))
