"""Tests for the experiment plumbing (scales, memoisation, runners)."""

import pytest

from repro.experiments.common import (
    DEFAULT,
    FULL,
    SMOKE,
    ExperimentScale,
    clear_trace_caches,
    data_addresses,
    instr_addresses,
    miss_rate,
    run_side,
    run_side_cache,
    run_system,
)


class TestScales:
    def test_presets_ordered(self):
        assert SMOKE.data_n < DEFAULT.data_n < FULL.data_n
        assert SMOKE.instructions < DEFAULT.instructions

    def test_scaled(self):
        half = DEFAULT.scaled(0.5)
        assert half.data_n == DEFAULT.data_n // 2
        assert half.seed == DEFAULT.seed

    def test_scaled_floor(self):
        tiny = DEFAULT.scaled(0.000001)
        assert tiny.data_n >= 1000


class TestMemoisation:
    def test_same_key_returns_same_object(self):
        a = data_addresses("gzip", 500, 1)
        b = data_addresses("gzip", 500, 1)
        assert a is b

    def test_different_seed_differs(self):
        assert data_addresses("gzip", 500, 1) != data_addresses("gzip", 500, 2)

    def test_instr_cache(self):
        a = instr_addresses("gcc", 500, 1)
        assert a is instr_addresses("gcc", 500, 1)

    def test_clear(self):
        a = data_addresses("gzip", 500, 1)
        clear_trace_caches()
        b = data_addresses("gzip", 500, 1)
        assert a == b and a is not b


class TestRunners:
    SCALE = ExperimentScale(data_n=2000, instr_n=2000, instructions=1000)

    def test_run_side_data(self):
        stats = run_side("dm", "gzip", "data", self.SCALE)
        assert stats.accesses == 2000

    def test_run_side_instr(self):
        stats = run_side("dm", "gzip", "instr", self.SCALE)
        assert stats.accesses == 2000

    def test_run_side_invalid_side(self):
        with pytest.raises(ValueError, match="side"):
            run_side("dm", "gzip", "icache", self.SCALE)

    def test_run_side_cache_returns_cache(self):
        cache = run_side_cache("victim16", "gzip", "data", self.SCALE)
        assert hasattr(cache, "victim_hits")

    def test_miss_rate_between_zero_and_one(self):
        rate = miss_rate("dm", "gzip", "data", self.SCALE)
        assert 0.0 < rate < 1.0

    def test_run_system_attaches_hierarchy(self):
        result = run_system("dm", "gzip", self.SCALE)
        assert result.instructions == 1000
        assert hasattr(result, "hierarchy")

    def test_policy_forwarded(self):
        cache = run_side_cache(
            "mf8_bas8", "equake", "data", self.SCALE, policy="random"
        )
        assert cache.policy_name == "random"

    def test_size_forwarded(self):
        small = run_side("dm", "equake", "data", self.SCALE, size=8 * 1024)
        large = run_side("dm", "equake", "data", self.SCALE, size=32 * 1024)
        assert small.num_sets == 256 and large.num_sets == 1024
