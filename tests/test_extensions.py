"""Tests for the Section 6.8 addressing analysis and the Section 6.4
drowsy-leakage extension, plus PD fault-injection robustness."""

import random

import pytest

from repro.core.addressing import analyze_addressing
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry
from repro.energy.drowsy import estimate_drowsy_leakage
from repro.stats.counters import CacheStats


class TestAddressingAnalysis:
    def test_headline_needs_three_virtual_tag_bits(self, headline_geometry):
        """Section 6.8: 'only the least three bits of the tag are
        required ... We may just treat these three bits as virtual
        index.'"""
        report = analyze_addressing(headline_geometry, page_size=4096)
        assert len(report.untranslated_tag_bits) == 3
        assert [b.address_bit for b in report.untranslated_tag_bits] == [14, 15, 16]
        assert not report.vp_compatible_without_care

    def test_pd_input_count_matches_pi(self, headline_geometry):
        report = analyze_addressing(headline_geometry)
        assert len(report.pd_bits) == headline_geometry.pi_bits

    def test_index_vs_tag_classification(self, headline_geometry):
        report = analyze_addressing(headline_geometry)
        sources = [b.source for b in report.pd_bits]
        assert sources == ["index"] * 3 + ["tag"] * 3

    def test_small_cache_is_vp_compatible(self):
        geometry = BCacheGeometry(2 * 1024, 32, mapping_factor=2, associativity=2)
        report = analyze_addressing(geometry, page_size=4096)
        assert report.vp_compatible_without_care

    def test_large_pages_remove_the_constraint(self, headline_geometry):
        """With 1 MB pages every PD input lies in the page offset."""
        report = analyze_addressing(headline_geometry, page_size=1 << 20)
        assert report.vp_compatible_without_care

    def test_describe_mentions_verdict(self, headline_geometry):
        text = analyze_addressing(headline_geometry).describe()
        assert "virtual index" in text

    def test_invalid_page_size(self, headline_geometry):
        with pytest.raises(ValueError):
            analyze_addressing(headline_geometry, page_size=5000)


class TestDrowsyLeakage:
    def _stats(self, counts):
        stats = CacheStats(num_sets=len(counts))
        stats.set_accesses = list(counts)
        stats.accesses = sum(counts)
        return stats

    def test_idle_sets_save_leakage(self):
        # Half the sets never touched: they are drowsy the whole run.
        stats = self._stats([1000, 1000, 0, 0])
        report = estimate_drowsy_leakage(stats, decay_window=4000)
        assert report.awake_fraction == pytest.approx(0.5)
        assert report.leakage_saving == pytest.approx(0.5 * 0.9)

    def test_hot_cache_saves_nothing(self):
        stats = self._stats([500, 500, 500, 500])
        report = estimate_drowsy_leakage(stats, decay_window=2000)
        assert report.awake_fraction == 1.0
        assert report.leakage_saving == 0.0

    def test_window_scales_awake_time(self):
        stats = self._stats([10, 10, 10, 10])
        short = estimate_drowsy_leakage(stats, decay_window=1)
        long = estimate_drowsy_leakage(stats, decay_window=100)
        assert short.awake_fraction < long.awake_fraction

    def test_validation(self):
        stats = self._stats([1])
        with pytest.raises(ValueError):
            estimate_drowsy_leakage(stats, decay_window=0)
        with pytest.raises(ValueError):
            estimate_drowsy_leakage(self._stats([0]), decay_window=10)

    def test_bcache_remains_drowsy_friendly(self, headline_geometry):
        """Section 6.4: balanced accesses still leave idle sets, so
        drowsy techniques remain applicable on the B-Cache."""
        from repro.caches.direct_mapped import DirectMappedCache
        from repro.workloads import SPEC2K

        addresses = SPEC2K["ammp"].data_addresses(15_000, seed=1)
        dm = DirectMappedCache(16 * 1024, 32)
        bc = BCache(headline_geometry)
        for address in addresses:
            dm.access(address)
            bc.access(address)
        dm_saving = estimate_drowsy_leakage(dm.stats, decay_window=2000)
        bc_saving = estimate_drowsy_leakage(bc.stats, decay_window=2000)
        assert bc_saving.leakage_saving > 0.1
        # Balancing costs some idleness, but not all of it.
        assert bc_saving.leakage_saving > 0.3 * dm_saving.leakage_saving


class TestPDFaultInjection:
    """The decoder tolerates entry invalidation (e.g. soft errors
    handled by invalidating the line): correctness is preserved, only
    extra misses occur."""

    def test_invalidation_never_breaks_integrity(self, headline_geometry):
        rng = random.Random(0)
        cache = BCache(headline_geometry)
        for step in range(4000):
            cache.access(rng.randrange(1 << 22))
            if step % 97 == 0:
                row = rng.randrange(headline_geometry.num_rows)
                cluster = rng.randrange(headline_geometry.num_clusters)
                cache.decoder.invalidate(row, cluster)
                # The orphaned block must be dropped with its PD entry,
                # exactly what invalidating a line does in hardware.
                set_index = headline_geometry.set_index(row, cluster)
                cache._tags[set_index] = -1
                cache._dirty[set_index] = False
        cache.check_integrity()

    def test_invalidated_block_misses_then_refills(self, headline_geometry):
        cache = BCache(headline_geometry)
        address = 0x4_2460
        cache.access(address)
        assert cache.access(address).hit
        block = address >> headline_geometry.offset_bits
        row, pi, _ = headline_geometry.decompose_block(block)
        cluster = cache.decoder.search(row, pi).cluster
        assert cluster is not None
        cache.decoder.invalidate(row, cluster)
        set_index = headline_geometry.set_index(row, cluster)
        cache._tags[set_index] = -1
        result = cache.access(address)
        assert not result.hit
        assert cache.access(address).hit
        cache.check_integrity()
