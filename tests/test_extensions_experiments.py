"""Tests for the extension experiment modules (rendering and shapes)."""

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.extensions import run_addressing, run_drowsy

TINY = ExperimentScale(data_n=6_000, instr_n=6_000, instructions=3_000)


class TestAddressingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_addressing()

    def test_covers_sizes_and_pages(self, study):
        pairs = {(r.geometry.size, r.page_size) for r in study.reports}
        assert (16 * 1024, 4096) in pairs
        assert len(pairs) == 6

    def test_4kb_pages_always_need_three_bits(self, study):
        for report in study.reports:
            if report.page_size == 4096:
                assert len(report.untranslated_tag_bits) == 3

    def test_bigger_pages_relax_smaller_caches_first(self, study):
        by_size = {
            r.geometry.size: r for r in study.reports if r.page_size == 65536
        }
        assert by_size[8 * 1024].vp_compatible_without_care
        assert not by_size[32 * 1024].vp_compatible_without_care

    def test_render(self, study):
        text = study.render()
        assert "Section 6.8" in text and "V/P as-is" in text


class TestDrowsyStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_drowsy(TINY, benchmarks=("ammp", "equake", "mcf"))

    def test_row_per_benchmark(self, study):
        assert [row[0] for row in study.rows] == ["ammp", "equake", "mcf"]

    def test_savings_in_range(self, study):
        for _, dm, bc in study.rows:
            assert 0.0 <= dm.leakage_saving <= 0.9
            assert 0.0 <= bc.leakage_saving <= 0.9

    def test_balancing_reduces_but_does_not_erase_idleness(self, study):
        dm_total = sum(dm.leakage_saving for _, dm, _ in study.rows)
        bc_total = sum(bc.leakage_saving for _, _, bc in study.rows)
        assert bc_total <= dm_total + 0.05
        assert bc_total > 0.0

    def test_render(self, study):
        text = study.render()
        assert "drowsy" in text.lower()
        assert "Ave" in text
