"""Unit tests for the cache-spec factory."""

import pytest

from repro.caches import (
    ColumnAssociativeCache,
    DirectMappedCache,
    FullyAssociativeCache,
    HighlyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
    UnknownCacheSpecError,
    VictimBufferCache,
    make_cache,
)
from repro.caches.factory import FIGURE12_SPECS, FIGURE45_SPECS, FIGURE89_SPECS
from repro.core.bcache import BCache


class TestSpecs:
    @pytest.mark.parametrize("spec,cls", [
        ("dm", DirectMappedCache),
        ("2way", SetAssociativeCache),
        ("8way", SetAssociativeCache),
        ("fa", FullyAssociativeCache),
        ("victim16", VictimBufferCache),
        ("mf8_bas8", BCache),
        ("column", ColumnAssociativeCache),
        ("skew2", SkewedAssociativeCache),
        ("hac", HighlyAssociativeCache),
    ])
    def test_spec_instantiates_expected_class(self, spec, cls):
        assert isinstance(make_cache(spec), cls)

    def test_ways_parsed(self):
        cache = make_cache("4way")
        assert isinstance(cache, SetAssociativeCache) and cache.ways == 4

    def test_victim_entries_parsed(self):
        cache = make_cache("victim8")
        assert cache.victim_entries == 8

    def test_bcache_parameters_parsed(self):
        cache = make_cache("mf4_bas2")
        assert cache.geometry.mapping_factor == 4
        assert cache.geometry.associativity == 2

    def test_size_forwarded(self):
        cache = make_cache("dm", size=8 * 1024)
        assert cache.size == 8 * 1024

    def test_whitespace_and_case_tolerated(self):
        assert isinstance(make_cache("  DM  "), DirectMappedCache)

    def test_unknown_spec(self):
        with pytest.raises(UnknownCacheSpecError):
            make_cache("bogus")

    def test_malformed_bcache_spec(self):
        with pytest.raises(UnknownCacheSpecError):
            make_cache("mf8bas8")


class TestFigureSpecLists:
    def test_figure45_instantiable(self):
        for spec in FIGURE45_SPECS:
            make_cache(spec)

    def test_figure12_instantiable(self):
        for spec in FIGURE12_SPECS:
            for size in (8 * 1024, 32 * 1024):
                make_cache(spec, size=size)

    def test_figure89_subset_of_figure45(self):
        assert set(FIGURE89_SPECS) <= set(FIGURE45_SPECS)
