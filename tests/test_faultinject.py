"""Tests for the deterministic fault injector and chaos harness."""

from __future__ import annotations

import pytest

from repro.engine.faultinject import (
    ALL_KINDS,
    CHILD_KINDS,
    FAULT_KINDS,
    NODE_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    apply_inprocess_faults,
    main as chaos_main,
)


class TestFaultSpec:
    def test_render_default_attempt(self):
        assert FaultSpec("crash", 3).render() == "crash@3"

    def test_render_explicit_attempt(self):
        assert FaultSpec("flaky", 2, 1).render() == "flaky@2:1"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec("meteor", 0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(FaultPlanError, match="non-negative"):
            FaultSpec("crash", -1)
        with pytest.raises(FaultPlanError, match="non-negative"):
            FaultSpec("crash", 0, -2)

    def test_node_kinds_are_valid_specs(self):
        assert ALL_KINDS == FAULT_KINDS + NODE_KINDS
        for kind in NODE_KINDS:
            assert FaultSpec(kind, 1).render() == f"{kind}@1"
        round_trip = FaultPlan.parse("node_down@0,node_hang@1:2")
        assert round_trip.render() == "node_down@0,node_hang@1:2"


class TestFaultPlanDSL:
    def test_parse_render_round_trip(self):
        text = "crash@0,hang@1:2,flaky@2,corrupt_blob@3,torn_journal@4:1"
        plan = FaultPlan.parse(text)
        assert plan.render() == text
        assert FaultPlan.parse(plan.render()) == plan

    def test_whitespace_and_empty_terms_tolerated(self):
        assert FaultPlan.parse(" crash@0 , ,flaky@1 ") == FaultPlan.parse(
            "crash@0,flaky@1"
        )

    def test_empty_plan_is_falsy(self):
        plan = FaultPlan.parse("")
        assert not plan and len(plan) == 0

    def test_missing_at_rejected(self):
        with pytest.raises(FaultPlanError, match="kind@job"):
            FaultPlan.parse("crash0")

    def test_non_integer_job_rejected(self):
        with pytest.raises(FaultPlanError, match="integers"):
            FaultPlan.parse("crash@one")

    def test_non_integer_attempt_rejected(self):
        with pytest.raises(FaultPlanError, match="integers"):
            FaultPlan.parse("crash@0:zero")

    def test_unknown_kind_in_dsl_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.parse("meteor@0")


class TestFaultPlanQueries:
    def test_matches_exact_coordinates_only(self):
        plan = FaultPlan.parse("flaky@2:1")
        assert plan.matches("flaky", 2, 1)
        assert not plan.matches("flaky", 2, 0)
        assert not plan.matches("flaky", 1, 1)
        assert not plan.matches("crash", 2, 1)

    def test_child_kinds_filters_and_orders(self):
        plan = FaultPlan.parse("flaky@5,corrupt_blob@5,crash@5,torn_journal@5")
        assert plan.child_kinds(5, 0) == ("crash", "flaky")  # FAULT_KINDS order
        assert plan.child_kinds(5, 1) == ()
        assert plan.child_kinds(4, 0) == ()

    def test_node_kinds_filters_and_orders(self):
        plan = FaultPlan.parse("node_flaky@3,node_down@3,crash@3,node_hang@2")
        # NODE_KINDS order, FAULT_KINDS filtered out, coordinates exact.
        assert plan.node_kinds(3, 0) == ("node_down", "node_flaky")
        assert plan.node_kinds(2, 0) == ("node_hang",)
        assert plan.node_kinds(3, 1) == ()
        assert plan.child_kinds(3, 0) == ("crash",)  # node kinds excluded

    def test_hash_and_equality(self):
        a = FaultPlan.parse("crash@0,hang@1")
        b = FaultPlan.parse("crash@0,hang@1")
        assert a == b and hash(a) == hash(b)
        assert a != FaultPlan.parse("hang@1,crash@0")  # order-sensitive tuple


class TestScatter:
    def test_deterministic(self):
        assert FaultPlan.scatter(2006, 10) == FaultPlan.scatter(2006, 10)

    def test_one_fault_per_kind_in_range(self):
        plan = FaultPlan.scatter(7, 5)
        assert len(plan) == len(FAULT_KINDS)
        assert [spec.kind for spec in plan.specs] == list(FAULT_KINDS)
        assert all(0 <= spec.job_index < 5 for spec in plan.specs)
        assert all(spec.attempt == 0 for spec in plan.specs)

    def test_empty_for_no_jobs(self):
        assert not FaultPlan.scatter(1, 0)


class TestInprocessFaults:
    def test_child_kinds_degrade_to_injected_fault(self):
        for kind in sorted(CHILD_KINDS):
            with pytest.raises(InjectedFault, match=kind):
                apply_inprocess_faults((kind,))

    def test_parent_kinds_and_empty_are_noops(self):
        apply_inprocess_faults(())
        apply_inprocess_faults(("corrupt_blob", "torn_journal"))


class TestChaosHarness:
    def test_smoke_recovers_all_fault_kinds(self, tmp_path):
        # Every kind except hang (kept out to keep the test fast; the
        # supervised-timeout path is covered in test_resilience.py).
        status = chaos_main(
            [
                "--benchmarks", "gzip",
                "--specs", "dm,2way",
                "--n", "1500",
                "--workers", "2",
                "--faults", "crash@0,flaky@1,corrupt_blob@0:1,torn_journal@1:1",
                "--run-root", str(tmp_path),
            ]
        )
        assert status == 0

    def test_out_of_range_fault_rejected(self, capsys):
        status = chaos_main(
            ["--benchmarks", "gzip", "--specs", "dm", "--faults", "crash@9"]
        )
        assert status == 2
        assert "only 1 jobs" in capsys.readouterr().err
