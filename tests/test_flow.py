"""The abstract-interpretation engine under bcache-lint.

Three layers of coverage:

* unit tests of the (interval, bit-width) domain — the joins, widening
  and bit-aware transfer functions everything else stands on;
* CFG construction and cycle detection (the BCL009 retrofit substrate);
* the headline acceptance criterion: :func:`prove_address_math`
  discharges every bounds obligation for **all 17 factory cache
  specs**, and a deliberately widened index mask is refuted.
"""

from __future__ import annotations

import ast

import pytest

from repro.analysis.domains import (
    TAINT_ADDR,
    TAINT_UNORDERED,
    Interval,
    Val,
    seed_value,
)
from repro.analysis.flow import (
    AstResolver,
    FnCtx,
    Interp,
    build_cfg,
    cycle_blocks,
)
from repro.analysis.rules_flow import (
    CONTRACTS,
    batch_allocation_lines,
    prove_address_math,
)
from repro.caches import make_cache

from test_engine_equivalence import ALL_SPECS


# ----------------------------------------------------------------------
# Interval domain
# ----------------------------------------------------------------------
class TestInterval:
    def test_exact_and_contains(self):
        nine = Interval.exact(9)
        assert nine.is_exact and nine.value == 9
        assert nine.contains(9) and not nine.contains(8)

    def test_join_widen_meet(self):
        a, b = Interval(0, 3), Interval(2, 7)
        assert a.join(b) == Interval(0, 7)
        assert a.meet(b) == Interval(2, 3)
        widened = a.widen(Interval(0, 8))
        assert widened.lo == 0 and widened.hi is None

    def test_arithmetic(self):
        a, b = Interval(1, 3), Interval(10, 20)
        assert a.add(b) == Interval(11, 23)
        assert b.sub(a) == Interval(7, 19)
        assert a.mul(Interval.exact(4)) == Interval(4, 12)
        assert b.floordiv(Interval.exact(2)) == Interval(5, 10)

    def test_bit_ops_bound_by_mask(self):
        block = Interval(0, (1 << 26) - 1)
        mask = Interval.exact(511)
        masked = block.and_(mask)
        assert masked.lo == 0 and masked.hi == 511

    def test_shift_composition(self):
        # (pi << npi) | row with npi=9, pi<=3 stays under 2^11.
        pi = Interval(0, 3)
        row = Interval(0, 511)
        composed = pi.lshift(Interval.exact(9)).or_(row)
        assert composed.hi is not None and composed.hi < (1 << 11)

    def test_mod_nonnegative_rhs(self):
        assert Interval(0, None).mod(Interval.exact(8)) == Interval(0, 7)


# ----------------------------------------------------------------------
# CFG + cycles (BCL009 substrate)
# ----------------------------------------------------------------------
def _fn(source: str) -> ast.FunctionDef:
    node = ast.parse(source).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


class TestCfg:
    def test_loop_body_is_on_a_cycle(self):
        fn = _fn(
            "def f(xs):\n"
            "    total = 0\n"
            "    for x in xs:\n"
            "        total += x\n"
            "    return total\n"
        )
        blocks = build_cfg(fn)
        cyclic = cycle_blocks(blocks)
        assert cyclic, "for-loop body must lie on a CFG cycle"

    def test_straight_line_has_no_cycle(self):
        fn = _fn("def f(x):\n    y = x + 1\n    return y\n")
        assert cycle_blocks(build_cfg(fn)) == set()

    def test_loop_that_returns_immediately_has_no_cycle_alloc(self):
        fn = _fn(
            "def access_trace(xs):\n"
            "    for x in xs:\n"
            "        return AccessResult(x)\n"
            "    return None\n"
        )
        assert batch_allocation_lines(fn) == []

    def test_real_loop_allocation_is_flagged(self):
        fn = _fn(
            "def access_trace(xs):\n"
            "    out = None\n"
            "    for x in xs:\n"
            "        out = AccessResult(x)\n"
            "    return out\n"
        )
        assert batch_allocation_lines(fn) == [4]

    def test_comprehension_allocation_is_flagged(self):
        fn = _fn(
            "def access_trace(xs):\n"
            "    return [AccessResult(x) for x in xs]\n"
        )
        assert batch_allocation_lines(fn) == [2]


# ----------------------------------------------------------------------
# Solver + narrowing
# ----------------------------------------------------------------------
def _analyze(source: str, bound: dict[str, Val]) -> Interp:
    tree = ast.parse(source)
    resolver = AstResolver(tree, inline=True)
    interp = Interp(resolver, contracts=CONTRACTS)
    fn = tree.body[0]
    interp.analyze(fn, FnCtx(module=resolver, name=fn.name), bound)
    return interp


class TestSolverObligations:
    def test_masked_subscript_is_proved(self):
        interp = _analyze(
            "def f(block, tags):\n"
            "    index = block & 511\n"
            "    return tags[index]\n",
            {
                "block": Val.of_int(0, (1 << 26) - 1),
                "tags": Val.of_seq(Val.of_int(-1, None), Interval.exact(512)),
            },
        )
        assert interp.obligations and all(o.proved for o in interp.obligations)

    def test_wide_mask_is_refuted(self):
        interp = _analyze(
            "def f(block, tags):\n"
            "    index = block & 1023\n"
            "    return tags[index]\n",
            {
                "block": Val.of_int(0, (1 << 26) - 1),
                "tags": Val.of_seq(Val.of_int(-1, None), Interval.exact(512)),
            },
        )
        assert any(not o.proved for o in interp.obligations)

    def test_branch_narrowing_proves_guarded_subscript(self):
        interp = _analyze(
            "def f(i, tags):\n"
            "    if 0 <= i < 8:\n"
            "        return tags[i]\n"
            "    return -1\n",
            {
                "i": Val.of_int(None, None),
                "tags": Val.of_seq(Val.of_int(-1, None), Interval.exact(8)),
            },
        )
        assert interp.obligations and all(o.proved for o in interp.obligations)

    def test_taint_propagates_through_arithmetic(self):
        interp = _analyze(
            "def f(block, tags):\n"
            "    index = (block >> 3) & 7\n"
            "    return tags[index]\n",
            {
                "block": Val.of_int(
                    0, 1023, taint=frozenset((TAINT_ADDR,))
                ),
                "tags": Val.of_seq(Val.of_int(-1, None), Interval.exact(8)),
            },
        )
        ob = interp.obligations[0]
        assert TAINT_ADDR in ob.taint and ob.proved

    def test_unordered_taint_from_set_iteration(self):
        interp = _analyze(
            "def f(items, tags):\n"
            "    for item in items:\n"
            "        x = tags[item]\n"
            "    return 0\n",
            {
                "items": Val.of_seq(
                    Val.of_int(0, 7), Interval.nonneg(), unordered=True
                ),
                "tags": Val.of_seq(Val.of_int(-1, None), Interval.exact(8)),
            },
        )
        # Iterating an unordered container labels the loop variable.
        assert interp.obligations
        assert all(
            TAINT_UNORDERED in o.taint for o in interp.obligations
        )

    def test_seed_value_reads_concrete_geometry(self):
        cache = make_cache("dm")
        val = seed_value(cache, path="self")
        assert val.obj is not None and val.obj.concrete is cache
        tags = seed_value(cache._tags, path="self._tags")
        assert tags.seq is not None
        assert tags.seq.length == Interval.exact(cache.num_sets)


# ----------------------------------------------------------------------
# Acceptance: all 17 factory specs prove; a widened mask does not
# ----------------------------------------------------------------------
class TestAddressMathProof:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_spec_address_math_proves(self, spec):
        report = prove_address_math(make_cache(spec))
        assert report.proven, report.render()
        assert report.obligations, "proof must discharge real obligations"

    def test_bcache_geometry_checks_present(self):
        report = prove_address_math(make_cache("mf8_bas8"))
        assert report.geometry_checks, "B-Cache must get geometry checks"
        assert all(ok for _, ok in report.geometry_checks)
        assert any("injective" in desc for desc, _ in report.geometry_checks)

    def test_widened_mask_is_refuted(self):
        cache = make_cache("dm")
        # Sabotage: one extra mask bit — half the indices point past
        # the table.  The proof must fail, not silently pass.
        cache._index_mask = cache.num_sets * 2 - 1
        report = prove_address_math(cache)
        assert not report.proven
        assert report.failures

    def test_report_renders(self):
        report = prove_address_math(make_cache("2way"))
        text = report.render()
        assert "PROVEN" in text and "obligations" in text
