"""Unit tests for the fully associative cache."""

import pytest

from repro.caches.fully_associative import FullyAssociativeCache


@pytest.fixture
def cache() -> FullyAssociativeCache:
    return FullyAssociativeCache(4 * 32, 32)  # 4 entries


class TestBasics:
    def test_no_conflict_misses(self, cache):
        """Addresses that thrash a DM cache coexist here."""
        for address in (0x0, 0x4000, 0x8000, 0xC000):
            cache.access(address)
        assert all(
            cache.access(a).hit for a in (0x0, 0x4000, 0x8000, 0xC000)
        )

    def test_capacity_eviction_is_lru(self, cache):
        for address in (0x0, 0x100, 0x200, 0x300):
            cache.access(address)
        result = cache.access(0x400)
        assert not result.hit
        assert result.evicted == 0x0

    def test_touch_refreshes_lru(self, cache):
        for address in (0x0, 0x100, 0x200, 0x300):
            cache.access(address)
        cache.access(0x0)
        result = cache.access(0x400)
        assert result.evicted == 0x100

    def test_dirty_eviction(self, cache):
        cache.access(0x0, is_write=True)
        for address in (0x100, 0x200, 0x300, 0x400):
            cache.access(address)
        assert cache.stats.writebacks == 1


class TestInvalidate:
    def test_invalidate_removes_block(self, cache):
        cache.access(0x0)
        assert cache.invalidate_block_address(0x10)
        assert not cache.contains(0x0)

    def test_invalidate_missing_block(self, cache):
        assert not cache.invalidate_block_address(0x9999)

    def test_invalidated_way_reused_first(self, cache):
        for address in (0x0, 0x100, 0x200, 0x300):
            cache.access(address)
        cache.invalidate_block_address(0x200)
        result = cache.access(0x500)
        assert result.evicted is None  # reuses the freed way


class TestFlush:
    def test_flush(self, cache):
        cache.access(0x0)
        cache.flush()
        assert not cache.contains(0x0)
        assert cache.stats.accesses == 0

    def test_reuse_after_flush(self, cache):
        cache.access(0x0)
        cache.flush()
        assert not cache.access(0x0).hit
        assert cache.access(0x0).hit
