"""The HTTP gateway: sans-IO request parsing and the full proxy path.

The :class:`RequestDecoder` is exercised exactly like the native
``FrameDecoder`` — bytes in, requests out, no sockets — including the
hostile inputs (oversized heads/bodies, chunked uploads, garbage).
The end-to-end tests boot a real :class:`SimServer` plus a
:class:`Gateway` in one event loop and speak raw HTTP/1.1 over TCP:
simulate must stay bit-identical through two proxies, sweeps must
stream NDJSON in completion order, and backend rate limits must
surface as 429 + ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.engine.runner import SweepJob, execute_job
from repro.serve.gateway import (
    BackendPool,
    Gateway,
    GatewayConfig,
    HttpError,
    RequestDecoder,
    render_response,
)
from repro.serve.protocol import read_frame, write_frame
from repro.serve.server import ServeConfig, SimServer

JOB = SweepJob(spec="mf8_bas8", benchmark="gcc", n=3000, with_kinds=True)
JOB_PAYLOAD = {"spec": JOB.spec, "benchmark": JOB.benchmark, "n": JOB.n,
               "with_kinds": True}


# ----------------------------------------------------------------------
# RequestDecoder (sans-IO)
# ----------------------------------------------------------------------
def _request_bytes(
    method: str = "POST",
    path: str = "/v1/simulate",
    body: bytes = b'{"a":1}',
    extra: str = "",
    version: str = "HTTP/1.1",
) -> bytes:
    head = (
        f"{method} {path} {version}\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n{extra}\r\n"
    )
    return head.encode("latin-1") + body


class TestRequestDecoder:
    def test_single_feed_roundtrip(self):
        [request] = RequestDecoder().feed(_request_bytes())
        assert request.method == "POST"
        assert request.path == "/v1/simulate"
        assert request.body == b'{"a":1}'
        assert request.keep_alive  # HTTP/1.1 default

    def test_byte_at_a_time_feeds(self):
        decoder = RequestDecoder()
        raw = _request_bytes()
        requests = []
        for i in range(len(raw)):
            requests.extend(decoder.feed(raw[i:i + 1]))
        assert len(requests) == 1
        assert requests[0].body == b'{"a":1}'

    def test_pipelined_requests_in_one_feed(self):
        raw = _request_bytes(body=b"one") + _request_bytes(body=b"two!")
        requests = RequestDecoder().feed(raw)
        assert [r.body for r in requests] == [b"one", b"two!"]

    def test_query_string_is_stripped_from_path(self):
        [request] = RequestDecoder().feed(
            _request_bytes(method="GET", path="/v1/status?verbose=1", body=b"")
        )
        assert request.path == "/v1/status"

    def test_connection_close_and_http10_semantics(self):
        [r] = RequestDecoder().feed(
            _request_bytes(extra="Connection: close\r\n")
        )
        assert not r.keep_alive
        [r] = RequestDecoder().feed(_request_bytes(version="HTTP/1.0"))
        assert not r.keep_alive  # 1.0 closes unless the client opts in
        [r] = RequestDecoder().feed(
            _request_bytes(version="HTTP/1.0",
                           extra="Connection: keep-alive\r\n")
        )
        assert r.keep_alive

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            RequestDecoder().feed(b"GARBAGE\r\n\r\n")
        assert exc.value.status == 400

    def test_chunked_upload_is_411(self):
        raw = (b"POST /v1/simulate HTTP/1.1\r\n"
               b"Transfer-Encoding: chunked\r\n\r\n")
        with pytest.raises(HttpError) as exc:
            RequestDecoder().feed(raw)
        assert exc.value.status == 411

    def test_declared_oversize_body_is_413_before_buffering(self):
        decoder = RequestDecoder(max_body=16)
        head = b"POST /v1/sweep HTTP/1.1\r\nContent-Length: 17\r\n\r\n"
        with pytest.raises(HttpError) as exc:
            decoder.feed(head)  # body bytes never arrive — head is enough
        assert exc.value.status == 413

    def test_oversize_header_block_is_431(self):
        with pytest.raises(HttpError) as exc:
            RequestDecoder().feed(b"A" * (17 * 1024))
        assert exc.value.status == 431

    def test_bad_content_length_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        with pytest.raises(HttpError) as exc:
            RequestDecoder().feed(raw)
        assert exc.value.status == 400

    def test_render_response_shape(self):
        raw = render_response(200, b'{"ok":true}', keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 11" in head
        assert b"Connection: close" in head
        assert body == b'{"ok":true}'


# ----------------------------------------------------------------------
# BackendPool (against a scripted fake backend)
# ----------------------------------------------------------------------
class TestBackendPool:
    def test_cancelled_request_releases_the_slot(self):
        # _route_sweep cancels its per-job tasks when the client
        # disconnects mid-stream; an aborted request must return its
        # slot or the pool deadlocks once every slot has leaked.
        async def scenario():
            import contextlib

            release = asyncio.Event()

            async def handle(reader, writer):
                with contextlib.suppress(Exception):
                    payload = await read_frame(reader, 1 << 20)
                    if payload and payload.get("stall"):
                        await release.wait()
                    await write_frame(writer, {"ok": True}, 1 << 20)
                writer.close()

            backend = await asyncio.start_server(handle, "127.0.0.1", 0)
            host, port = backend.sockets[0].getsockname()[:2]
            pool = BackendPool(f"{host}:{port}", size=1, timeout=5.0)
            stalled = asyncio.ensure_future(pool.request({"stall": True}))
            await asyncio.sleep(0.05)  # let it lease the only slot
            stalled.cancel()
            with pytest.raises(asyncio.CancelledError):
                await stalled
            # The single slot must be back: a fresh request completes
            # instead of hanging in _lease forever.
            response = await asyncio.wait_for(
                pool.request({"stall": False}), 5.0
            )
            release.set()  # unblock the first handler before teardown
            await pool.close()
            backend.close()
            await backend.wait_closed()
            return response

        assert asyncio.run(scenario()) == {"ok": True}


# ----------------------------------------------------------------------
# End to end: SimServer + Gateway in one loop, raw HTTP over TCP
# ----------------------------------------------------------------------
def gateway_stack(scenario, *, server_overrides=None, **gateway_overrides):
    """Boot server + gateway, run ``scenario(server, gateway, addr)``."""

    async def runner():
        defaults = dict(port=0, shards=1, window=0.01)
        defaults.update(server_overrides or {})
        server = SimServer(ServeConfig(**defaults))
        await server.start()
        host, port = server.tcp_address
        gateway = Gateway(GatewayConfig(
            port=0, backend=f"{host}:{port}", **gateway_overrides
        ))
        await gateway.start()
        try:
            return await scenario(server, gateway, gateway.address)
        finally:
            await gateway.drain()
            await server.drain()

    return asyncio.run(runner())


async def http(addr, method, path, body=None, headers=None):
    """One raw HTTP/1.1 exchange; returns (status, headers, body bytes).

    Sends ``Connection: close`` and reads to EOF, de-chunking when the
    response used chunked transfer encoding.
    """
    reader, writer = await asyncio.open_connection(*addr)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Connection: close\r\nContent-Length: {len(payload)}\r\n")
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    response_headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    if response_headers.get("transfer-encoding") == "chunked":
        body_bytes = _dechunk(body_bytes)
    return status, response_headers, body_bytes


def _dechunk(raw: bytes) -> bytes:
    out = bytearray()
    while raw:
        size_text, _, raw = raw.partition(b"\r\n")
        size = int(size_text, 16)
        if size == 0:
            break
        out.extend(raw[:size])
        raw = raw[size + 2:]  # chunk data + trailing CRLF
    return bytes(out)


class TestGatewayEndToEnd:
    def test_simulate_is_bit_identical_through_both_tiers(self):
        async def scenario(server, gateway, addr):
            return await http(addr, "POST", "/v1/simulate", JOB_PAYLOAD)

        status, headers, body = gateway_stack(scenario)
        assert status == 200
        assert headers["content-type"] == "application/json"
        response = json.loads(body)
        assert response["ok"] is True
        assert response["stats"] == execute_job(JOB).snapshot()

    def test_sweep_streams_ndjson_with_indices_and_summary(self):
        jobs = [
            {"spec": spec, "benchmark": "gcc", "n": 2000}
            for spec in ("dm", "2way", "mf8_bas8")
        ]

        async def scenario(server, gateway, addr):
            return await http(addr, "POST", "/v1/sweep", {"jobs": jobs})

        status, headers, body = gateway_stack(scenario)
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        assert headers["transfer-encoding"] == "chunked"
        lines = [json.loads(line) for line in body.splitlines() if line]
        summary = lines[-1]
        assert summary == {"done": True, "jobs": 3, "ok": 3, "errors": 0}
        results = lines[:-1]
        # Completion order is arbitrary; indices must cover every job.
        assert sorted(r["index"] for r in results) == [0, 1, 2]
        for r in results:
            job = SweepJob(**jobs[r["index"]])
            assert r["stats"] == execute_job(job).snapshot()

    def test_status_nests_gateway_snapshot(self):
        async def scenario(server, gateway, addr):
            return await http(addr, "GET", "/v1/status")

        status, _, body = gateway_stack(scenario)
        assert status == 200
        response = json.loads(body)
        assert response["ok"] is True
        assert "server" in response and "batcher" in response
        assert response["gateway"]["requests"] >= 1

    def test_healthz_404_405_and_bad_json(self):
        async def scenario(server, gateway, addr):
            healthz = await http(addr, "GET", "/healthz")
            missing = await http(addr, "GET", "/v1/nope")
            wrong_method = await http(addr, "GET", "/v1/simulate")
            reader, writer = await asyncio.open_connection(*addr)
            writer.write(b"POST /v1/simulate HTTP/1.1\r\nHost: t\r\n"
                         b"Connection: close\r\nContent-Length: 9\r\n\r\n"
                         b"not json!")
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            return healthz, missing, wrong_method, raw

        healthz, missing, wrong_method, raw = gateway_stack(scenario)
        assert healthz[0] == 200
        assert json.loads(healthz[2]) == {"ok": True, "draining": False}
        assert missing[0] == 404
        assert wrong_method[0] == 405
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_metrics_scrape_covers_the_gateway_series(self):
        async def scenario(server, gateway, addr):
            # Complete one request first so the shared registry has a
            # gateway series to expose.
            await http(addr, "GET", "/healthz")
            return await http(addr, "GET", "/metrics")

        status, headers, body = gateway_stack(scenario)
        assert status == 200
        assert "text/plain" in headers["content-type"]
        assert "repro_gateway_requests_total" in body.decode("utf-8")

    def test_backend_rate_limit_maps_to_429_with_retry_after(self):
        async def scenario(server, gateway, addr):
            tag = {"x-bcache-client": "hammer"}
            first = await http(addr, "POST", "/v1/simulate", JOB_PAYLOAD,
                               headers=tag)
            second = await http(addr, "POST", "/v1/simulate", JOB_PAYLOAD,
                                headers=tag)
            # A different identity has its own bucket and is admitted.
            other = await http(addr, "POST", "/v1/simulate", JOB_PAYLOAD,
                               headers={"x-bcache-client": "polite"})
            return first, second, other

        first, second, other = gateway_stack(
            scenario,
            server_overrides=dict(rate_limit=1.0, rate_burst=1.0),
        )
        assert first[0] == 200
        assert second[0] == 429
        assert int(second[1]["retry-after"]) >= 1
        assert json.loads(second[2])["error"] == "rate_limited"
        assert other[0] == 200

    def test_result_cache_serves_repeats_without_recompute(self, tmp_path):
        async def scenario(server, gateway, addr):
            responses = [
                await http(addr, "POST", "/v1/simulate", JOB_PAYLOAD)
                for _ in range(3)
            ]
            status = await http(addr, "GET", "/v1/status")
            return responses, status

        responses, status = gateway_stack(
            scenario,
            server_overrides=dict(result_cache=str(tmp_path / "rc")),
        )
        bodies = [json.loads(body) for _, _, body in responses]
        assert all(b["ok"] for b in bodies)
        assert bodies[0]["stats"] == bodies[1]["stats"] == bodies[2]["stats"]
        cache = json.loads(status[2])["resultcache"]
        assert cache["stores"] == 1
        assert cache["hits_memory"] >= 2  # repeats never reached a shard
