"""Unit tests for the address-stream primitives."""

import itertools
import random

import pytest

from repro.workloads import generators


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestStrided:
    def test_wraps_at_region(self):
        stream = generators.strided(0x100, region=96, stride=32)
        assert take(stream, 4) == [0x100, 0x120, 0x140, 0x100]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            take(generators.strided(0, region=0, stride=32), 1)
        with pytest.raises(ValueError):
            take(generators.strided(0, region=32, stride=0), 1)

    def test_sequential_scan_touches_every_block(self):
        addresses = take(generators.sequential_scan(0, 256, 32), 8)
        assert addresses == [i * 32 for i in range(8)]


class TestConflictRotation:
    def test_all_regions_share_cache_index(self):
        rng = random.Random(0)
        stream = generators.conflict_rotation(
            0x1000, conflict_stride=16 * 1024, degree=4, rng=rng, span_blocks=2
        )
        addresses = take(stream, 64)
        index_mask = 16 * 1024 - 1
        assert len({a & index_mask for a in addresses}) == 2  # span of 2 blocks

    def test_degree_many_tags(self):
        rng = random.Random(1)
        stream = generators.conflict_rotation(
            0, conflict_stride=16 * 1024, degree=6, rng=rng, span_blocks=1
        )
        addresses = take(stream, 600)
        assert len({a >> 14 for a in addresses}) == 6

    def test_random_rotation_is_not_cyclic(self):
        rng = random.Random(2)
        stream = generators.conflict_rotation(
            0, conflict_stride=16 * 1024, degree=4, rng=rng, span_blocks=1
        )
        regions = [a >> 14 for a in take(stream, 100)]
        cyclic = [i % 4 for i in range(100)]
        assert regions != cyclic

    def test_dwell_repeats_blocks(self):
        rng = random.Random(3)
        stream = generators.conflict_rotation(
            0, conflict_stride=16 * 1024, degree=1, rng=rng, span_blocks=2, dwell=3
        )
        assert take(stream, 6) == [0, 0, 0, 32, 32, 32]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            take(
                generators.conflict_rotation(0, 16384, 0, random.Random(0)), 1
            )


class TestZipfHot:
    def test_addresses_stay_in_region(self):
        rng = random.Random(4)
        stream = generators.zipf_hot(0x1000, region=1024, rng=rng)
        assert all(0x1000 <= a < 0x1400 for a in take(stream, 500))

    def test_skewed_distribution(self):
        rng = random.Random(5)
        stream = generators.zipf_hot(0, region=64 * 32, rng=rng, alpha=1.3)
        counts: dict[int, int] = {}
        for address in take(stream, 5000):
            counts[address] = counts.get(address, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # Hottest block gets far more than a uniform share (5000/64 = 78).
        assert top[0] > 300

    def test_deterministic_given_rng(self):
        a = generators.zipf_hot(0, 1024, random.Random(6))
        b = generators.zipf_hot(0, 1024, random.Random(6))
        assert take(a, 50) == take(b, 50)


class TestUniformRandom:
    def test_block_aligned(self):
        rng = random.Random(7)
        stream = generators.uniform_random(0, 1 << 20, rng)
        assert all(a % 32 == 0 for a in take(stream, 100))

    def test_covers_region_broadly(self):
        rng = random.Random(8)
        stream = generators.uniform_random(0, 1 << 20, rng)
        addresses = take(stream, 2000)
        assert len(set(addresses)) > 1800  # 32k blocks: few repeats


class TestPointerChase:
    def test_visits_form_permutation_cycles(self):
        rng = random.Random(9)
        stream = generators.pointer_chase(0, nodes=16, rng=rng)
        addresses = take(stream, 16)
        # A permutation walk can revisit only after completing a cycle:
        # the first repeat, if any, must equal the cycle start.
        seen = []
        for address in addresses:
            if address in seen:
                assert address == seen[0]
                break
            seen.append(address)

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            take(generators.pointer_chase(0, 0, random.Random(0)), 1)


class TestCallChain:
    def test_addresses_within_functions(self):
        rng = random.Random(10)
        functions = [(0x1000, 256), (0x5000, 256)]
        stream = generators.call_chain_ifetch(functions, rng)
        for address in take(stream, 300):
            assert (0x1000 <= address < 0x1100) or (0x5000 <= address < 0x5100)

    def test_empty_functions_rejected(self):
        with pytest.raises(ValueError):
            take(generators.call_chain_ifetch([], random.Random(0)), 1)


class TestInterleave:
    def test_single_component_passthrough(self):
        stream = generators.interleave_addresses(
            [(1.0, iter(range(5)))], random.Random(0)
        )
        assert take(stream, 5) == [0, 1, 2, 3, 4]

    def test_mixes_by_weight(self):
        stream = generators.interleave_addresses(
            [(0.9, itertools.repeat(0)), (0.1, itertools.repeat(1))],
            random.Random(1),
        )
        sample = take(stream, 2000)
        assert 0.85 < sample.count(0) / len(sample) < 0.95

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            take(generators.interleave_addresses([], random.Random(0)), 1)
