"""Unit tests for cache levels and the two-level memory hierarchy."""

import pytest

from repro.caches.column_associative import ColumnAssociativeCache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.victim import VictimBufferCache
from repro.hierarchy.levels import CacheLevel
from repro.hierarchy.memory_system import MemoryHierarchy
from repro.trace.access import Access, AccessType


def small_hierarchy(**kwargs) -> MemoryHierarchy:
    return MemoryHierarchy(
        l1i=DirectMappedCache(512, 32),
        l1d=DirectMappedCache(512, 32),
        **kwargs,
    )


class TestCacheLevel:
    def test_hit_latency(self):
        level = CacheLevel(DirectMappedCache(512, 32), hit_latency=1)
        level.access(0x0)
        assert level.access(0x0).latency == 1

    def test_miss_charges_probe_latency(self):
        level = CacheLevel(DirectMappedCache(512, 32), hit_latency=2)
        assert level.access(0x0).latency == 2

    def test_victim_buffer_slow_hit(self):
        level = CacheLevel(VictimBufferCache(512, 32, 4), hit_latency=1)
        level.access(0x0)
        level.access(0x200)
        timed = level.access(0x0)  # buffer swap hit: +1 cycle
        assert timed.result.hit and timed.latency == 2
        assert level.slow_hits == 1

    def test_column_associative_slow_hit(self):
        level = CacheLevel(ColumnAssociativeCache(512, 32), hit_latency=1)
        level.access(0x0)
        level.access(0x200)
        timed = level.access(0x200)  # might be first-probe by now
        assert timed.latency in (1, 2)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            CacheLevel(DirectMappedCache(512, 32), hit_latency=0)


class TestMemoryHierarchy:
    def test_l1_hit_is_one_cycle(self):
        hierarchy = small_hierarchy()
        hierarchy.access_data(0x1000)
        assert hierarchy.access_data(0x1000) == 1

    def test_l1_miss_l2_hit_latency(self):
        hierarchy = small_hierarchy()
        hierarchy.access_data(0x1000)  # brings into L1 and L2
        hierarchy.access_data(0x1000 + 512)  # evicts L1 block (same set)
        latency = hierarchy.access_data(0x1000)  # L1 miss, L2 hit
        assert latency == 1 + 6

    def test_cold_miss_pays_memory_latency(self):
        hierarchy = small_hierarchy()
        assert hierarchy.access_data(0x1000) == 1 + 6 + 100

    def test_ifetch_counted_as_instruction(self):
        hierarchy = small_hierarchy()
        hierarchy.fetch_instruction(0x400000)
        assert hierarchy.stats.instructions == 1
        assert hierarchy.stats.ifetches == 1

    def test_l2_shared_between_sides(self):
        hierarchy = small_hierarchy()
        hierarchy.fetch_instruction(0x8000)
        # L1I miss filled L2; a data access to the same line hits L2.
        latency = hierarchy.access_data(0x8000)
        assert latency == 1 + 6

    def test_dirty_l1_eviction_writes_back_to_l2(self):
        hierarchy = small_hierarchy()
        hierarchy.access_data(0x1000, is_write=True)
        l2_accesses_before = hierarchy.stats.l2_accesses
        hierarchy.access_data(0x1000 + 512)  # evicts dirty block
        assert hierarchy.stats.l2_accesses > l2_accesses_before + 1

    def test_run_trace(self):
        hierarchy = small_hierarchy()
        trace = [
            Access(0x400000, AccessType.IFETCH),
            Access(0x1000, AccessType.READ),
            Access(0x1000, AccessType.WRITE),
        ]
        stats = hierarchy.run(trace)
        assert stats.instructions == 1
        assert stats.data_accesses == 2
        assert stats.l1d_misses == 1

    def test_miss_rates(self):
        hierarchy = small_hierarchy()
        hierarchy.run([Access(0x1000, AccessType.READ)] * 4)
        assert hierarchy.stats.l1d_miss_rate == pytest.approx(0.25)

    def test_flush(self):
        hierarchy = small_hierarchy()
        hierarchy.access_data(0x1000)
        hierarchy.flush()
        assert hierarchy.stats.data_accesses == 0
        assert hierarchy.access_data(0x1000) == 107  # cold again

    def test_memory_access_counting(self):
        hierarchy = small_hierarchy()
        hierarchy.access_data(0x1000)
        assert hierarchy.stats.memory_accesses == 1
        hierarchy.access_data(0x1000)
        assert hierarchy.stats.memory_accesses == 1

    def test_default_l2_configuration(self):
        hierarchy = small_hierarchy()
        l2 = hierarchy.l2.cache
        assert l2.size == 256 * 1024
        assert l2.line_size == 128
        assert l2.ways == 4
