"""Hierarchy composition tests: any organisation at any level.

The hierarchy accepts any `Cache` at L1I/L1D/L2, so configurations the
paper never ran — a B-Cache L2, a victim-buffered L1 under a B-Cache
L2 — must simply work.  These tests pin that compositionality.
"""

import pytest

from repro.caches import make_cache
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry
from repro.cpu import EventDrivenCore, OoOProcessorModel
from repro.hierarchy.memory_system import MemoryHierarchy
from repro.workloads import SPEC2K


def _combined(benchmark: str, n: int = 3000):
    return list(SPEC2K[benchmark].combined_trace(n, seed=6))


class TestBCacheAsL2:
    def test_bcache_l2_runs(self):
        l2_geometry = BCacheGeometry(
            256 * 1024, 128, mapping_factor=8, associativity=8
        )
        hierarchy = MemoryHierarchy(
            l1i=make_cache("dm"),
            l1d=make_cache("dm"),
            l2=BCache(l2_geometry),
        )
        stats = hierarchy.run(_combined("equake"))
        assert stats.l2_accesses > 0
        hierarchy.l2.cache.check_integrity()

    def test_bcache_l2_not_worse_than_dm_l2(self):
        from repro.caches.direct_mapped import DirectMappedCache

        def run(l2):
            hierarchy = MemoryHierarchy(
                l1i=make_cache("dm"), l1d=make_cache("dm"), l2=l2
            )
            hierarchy.run(_combined("crafty", 6000))
            return hierarchy.stats.l2_misses

        dm_misses = run(DirectMappedCache(256 * 1024, 128))
        bc_misses = run(
            BCache(BCacheGeometry(256 * 1024, 128, 8, 8))
        )
        assert bc_misses <= dm_misses


class TestMixedL1:
    @pytest.mark.parametrize("spec", ["victim16", "column", "agac", "mf8_bas8"])
    def test_any_l1_under_default_l2(self, spec):
        hierarchy = MemoryHierarchy(
            l1i=make_cache(spec), l1d=make_cache(spec)
        )
        stats = hierarchy.run(_combined("gzip"))
        assert stats.instructions == 3000
        assert stats.total_latency > 0

    def test_asymmetric_l1(self):
        """B-Cache I$, victim-buffered D$ — a plausible hybrid."""
        hierarchy = MemoryHierarchy(
            l1i=make_cache("mf8_bas8"), l1d=make_cache("victim16")
        )
        stats = hierarchy.run(_combined("equake"))
        assert stats.l1i_miss_rate < 1.0
        assert stats.l1d_miss_rate < 1.0


class TestBothCoresOnCompositions:
    def test_analytic_model_on_hybrid(self):
        hierarchy = MemoryHierarchy(
            l1i=make_cache("mf8_bas8"), l1d=make_cache("mf8_bas8")
        )
        result = OoOProcessorModel(hierarchy).run(iter(_combined("gzip")))
        assert result.ipc > 0

    def test_event_core_on_hybrid(self):
        hierarchy = MemoryHierarchy(
            l1i=make_cache("column"), l1d=make_cache("agac")
        )
        result = EventDrivenCore(hierarchy).run(iter(_combined("gzip")))
        assert result.ipc > 0


class TestMainModule:
    def test_python_dash_m_repro(self, capsys):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "fig4" in proc.stdout
