"""Tests for the hit-latency study and the slow-hit profiles."""

import pytest

from repro.caches import make_cache
from repro.experiments.common import ExperimentScale
from repro.experiments.latency_study import (
    LATENCY_SPECS,
    run,
    slow_hit_profile,
)

TINY = ExperimentScale(data_n=10_000, instr_n=10_000, instructions=5_000, seed=2006)


class TestSlowHitProfiles:
    def test_one_cycle_organisations(self):
        """DM, set-associative, B-Cache, page colouring: no slow hits."""
        for spec in ("dm", "8way", "mf8_bas8", "pagecolor"):
            cache = make_cache(spec)
            cache.access(0x40)
            cache.access(0x40)
            fraction, extra = slow_hit_profile(cache)
            assert fraction == 0.0 and extra == 0.0

    def test_victim_buffer_profile(self):
        cache = make_cache("victim16")
        cache.access(0x0)
        cache.access(0x4000)
        cache.access(0x0)  # buffer swap hit
        fraction, extra = slow_hit_profile(cache)
        assert fraction > 0.0 and extra == 1.0

    def test_agac_charges_two_extra_cycles(self):
        cache = make_cache("agac")
        cache.access(0x0)
        cache.access(0x4000)
        cache.access(0x0)  # relocated hit
        fraction, extra = slow_hit_profile(cache)
        assert fraction > 0.0 and extra == 2.0

    def test_psa_extra_probes(self):
        cache = make_cache("psa2")
        for _ in range(10):
            cache.access(0x0)
            cache.access(0x4000)
        fraction, extra = slow_hit_profile(cache)
        assert fraction > 0.0 and extra >= 1.0


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run(TINY, benchmarks=("equake", "crafty", "gzip"))

    def test_all_specs_present(self, study):
        assert {row.spec for row in study.rows} == set(LATENCY_SPECS)

    def test_bcache_has_one_cycle_hits(self, study):
        """The headline claim: all B-Cache hits in one cycle."""
        row = study.row("mf8_bas8")
        assert row.slow_hit_fraction == 0.0
        assert row.effective_hit_latency == 1.0

    def test_prior_art_pays_latency(self, study):
        for spec in ("victim16", "column", "agac", "psa2"):
            assert study.row(spec).effective_hit_latency > 1.0

    def test_bcache_wins_amat(self, study):
        """On conflict-heavy workloads the B-Cache's AMAT beats every
        compared organisation: similar reductions, no latency tax."""
        bcache_amat = study.row("mf8_bas8").amat
        for spec in ("dm", "victim16", "column", "psa2", "pam2", "pagecolor"):
            assert bcache_amat <= study.row(spec).amat + 1e-9

    def test_agac_relocated_fraction_near_paper(self, study):
        """Paper: relocated lines are 5.24% of AGAC hits."""
        assert 0.0 < study.row("agac").slow_hit_fraction < 0.15

    def test_render(self, study):
        text = study.render()
        assert "AMAT" in text and "mf8_bas8" in text

    def test_unknown_spec_lookup(self, study):
        with pytest.raises(KeyError):
            study.row("bogus")
