"""The custom lint pass, driven by the seeded fixture corpus.

Every rule BCL001–BCL019 has one minimal violating fixture and one
minimal clean fixture under ``tests/fixtures/lint/``; the corpus tests
assert each positive is reported and each negative is silent.  The
remaining classes cover engine mechanics: noqa suppression, the
flow-aware BCL009 semantics, output formats, the result cache, CLI
exit codes — and the acceptance criterion that the repo itself is
clean under all nineteen rules.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    FLOW_RULES,
    RULES,
    Violation,
    available_cpus,
    engine_fingerprint,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    main,
    render_json,
    render_sarif,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
HOT_PATH = "src/repro/caches/example.py"
COLD_PATH = "src/repro/experiments/example.py"
ENGINE_PATH = "src/repro/engine/example.py"
SERVE_PATH = "src/repro/serve/example.py"

ALL_CODES = sorted(RULES)  # BCL001..BCL019


def load_fixture(name: str) -> tuple[str, str]:
    """Fixture source and the virtual path its ``# lint-path:`` names."""
    source = (FIXTURES / name).read_text(encoding="utf-8")
    first_line = source.splitlines()[0]
    assert first_line.startswith("# lint-path:"), name
    return source, first_line.split(":", 1)[1].strip()


def codes(source: str, path: str = HOT_PATH) -> set[str]:
    return {violation.code for violation in lint_source(source, path)}


# ----------------------------------------------------------------------
# Fixture corpus: every positive fires, every negative is silent
# ----------------------------------------------------------------------
class TestFixtureCorpus:
    def test_every_rule_has_a_fixture_pair(self):
        for code in ALL_CODES:
            assert (FIXTURES / f"{code}_bad.py").exists(), code
            assert (FIXTURES / f"{code}_good.py").exists(), code

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_bad_fixture_fires(self, code):
        source, path = load_fixture(f"{code}_bad.py")
        found = {v.code for v in lint_source(source, path)}
        assert code in found, f"{code}_bad.py did not trigger {code}: {found}"
        assert found == {code}, (
            f"{code}_bad.py is not minimal; extra codes: {found - {code}}"
        )

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_good_fixture_is_silent(self, code):
        source, path = load_fixture(f"{code}_good.py")
        violations = lint_source(source, path)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_noqa_fixture_fully_suppressed(self):
        source, path = load_fixture("noqa_suppressed.py")
        assert lint_source(source, path) == []
        # Without the noqa comments the same source must fire twice.
        stripped = "\n".join(
            line.split("#")[0] for line in source.splitlines()[1:]
        )
        assert [v.code for v in lint_source(stripped, path)] == [
            "BCL005",
            "BCL005",
        ]


# ----------------------------------------------------------------------
# BCL009 — flow-aware allocation rule (CFG-cycle semantics)
# ----------------------------------------------------------------------
class TestBatchAllocationFlow:
    def test_allocation_on_cfg_cycle_fires(self):
        source, path = load_fixture("BCL009_bad.py")
        assert "BCL009" in codes(source, path)

    def test_while_loop_allocation_fires(self):
        source = (
            "def access_trace(self, addresses, kinds=None):\n"
            "    while addresses:\n"
            "        AccessResult(hit=False, set_index=1)\n"
        )
        assert "BCL009" in codes(source)

    def test_allocation_in_comprehension_fires(self):
        source = (
            "def _batch_trace(self, addresses, kinds):\n"
            "    return [AccessResult(hit=True, set_index=0) for _ in addresses]\n"
        )
        assert "BCL009" in codes(source)

    def test_return_on_first_iteration_is_clean(self):
        # The flow retrofit: lexically inside a for, but not on a cycle.
        source, path = load_fixture("BCL009_good.py")
        assert codes(source, path) == set()

    def test_allocation_outside_loop_is_clean(self):
        source = (
            "def _batch_trace(self, addresses, kinds):\n"
            "    sentinel = AccessResult(hit=False, set_index=0)\n"
            "    for address in addresses:\n"
            "        pass\n"
            "    return sentinel\n"
        )
        assert "BCL009" not in codes(source)

    def test_loop_in_other_function_is_clean(self):
        source = (
            "def _access_block(self, block: int, is_write: bool) -> int:\n"
            "    for _ in range(2):\n"
            "        AccessResult(hit=True, set_index=0)\n"
            "    return 0\n"
        )
        assert "BCL009" not in codes(source)

    def test_helper_nested_in_batch_kernel_fires(self):
        source = (
            "def _batch_trace(self, addresses, kinds):\n"
            "    def drain():\n"
            "        for address in addresses:\n"
            "            AccessResult(hit=True, set_index=0)\n"
            "    drain()\n"
        )
        assert "BCL009" in codes(source)


# ----------------------------------------------------------------------
# Flow rules — behaviours beyond the minimal fixture pair
# ----------------------------------------------------------------------
class TestDeterminismFlow:
    def test_unordered_listing_into_journal_fires(self):
        source = (
            "import os\n"
            "def collect(journal, results):\n"
            "    for name in os.listdir('runs'):\n"
            "        journal.record(name, results[0])\n"
        )
        assert "BCL013" in codes(source, ENGINE_PATH)

    def test_random_into_serve_payload_fires(self):
        source = (
            "import random\n"
            "def handler(request):\n"
            "    return {'stats': random.random()}\n"
        )
        assert "BCL013" in codes(source, SERVE_PATH)

    def test_sorted_listing_is_sanitized(self):
        source = (
            "import os\n"
            "def collect(journal, results):\n"
            "    for name in sorted(os.listdir('runs')):\n"
            "        journal.record(name, results[0])\n"
        )
        assert "BCL013" not in codes(source, ENGINE_PATH)

    def test_latency_record_is_exempt(self):
        # .record on a non-journal, non-stats receiver is not a sink.
        source = (
            "import time\n"
            "def observe(state):\n"
            "    started = time.perf_counter()\n"
            "    state.latency.record(time.perf_counter() - started)\n"
        )
        assert "BCL013" not in codes(source, SERVE_PATH)


class TestForkSafetyFlow:
    def test_unpicklable_across_process_fires(self):
        source = (
            "import threading\n"
            "import multiprocessing\n"
            "def spawn():\n"
            "    lock = threading.Lock()\n"
            "    p = multiprocessing.Process(target=run, args=(lock,))\n"
            "    p.start()\n"
        )
        assert "BCL014" in codes(source, ENGINE_PATH)

    def test_dropped_create_task_fires_in_serve(self):
        source = (
            "import asyncio\n"
            "async def serve_loop(loop):\n"
            "    loop.create_task(drain())\n"
        )
        assert "BCL014" in codes(source, SERVE_PATH)

    def test_kept_task_reference_is_clean(self):
        source = (
            "import asyncio\n"
            "async def serve_loop(loop):\n"
            "    task = loop.create_task(drain())\n"
            "    await task\n"
        )
        assert "BCL014" not in codes(source, SERVE_PATH)

    def test_create_task_outside_serve_is_exempt(self):
        source = (
            "import asyncio\n"
            "async def run(loop):\n"
            "    loop.create_task(drain())\n"
        )
        assert "BCL014" not in codes(source, COLD_PATH)


class TestAddressMathFlow:
    def test_widened_mask_fires(self):
        source, path = load_fixture("BCL015_bad.py")
        violations = [
            v for v in lint_source(source, path) if v.code == "BCL015"
        ]
        assert violations, "widened index mask must be flagged"
        assert "wider than the table" in violations[0].message

    def test_unbounded_index_stays_silent(self):
        # No constructor facts -> no finite bound -> conservative silence.
        source = (
            "class OpaqueCache:\n"
            "    def _access_block(self, block: int, is_write: bool) -> int:\n"
            "        return self._tags[block & self._mask]\n"
        )
        assert "BCL015" not in codes(source)


# ----------------------------------------------------------------------
# Mechanics: noqa, syntax errors, file discovery, cache, CLI
# ----------------------------------------------------------------------
class TestMechanics:
    def test_noqa_for_other_code_does_not_suppress(self):
        source = "rng = random.Random()  # noqa: BCL001\n"
        assert codes(source, COLD_PATH) == {"BCL005"}

    def test_syntax_error_reported_as_bcl000(self):
        violations = lint_source("def broken(:\n", COLD_PATH)
        assert [v.code for v in violations] == ["BCL000"]

    def test_violation_render_format(self):
        violation = Violation("a/b.py", 3, "BCL005", "message")
        assert violation.render() == "a/b.py:3: BCL005 message"

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache_dir = tmp_path / "__pycache__"
        cache_dir.mkdir()
        (cache_dir / "bad.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["ok.py"]

    def test_flow_rules_registered(self):
        assert FLOW_RULES == {"BCL013", "BCL014", "BCL015"}
        assert FLOW_RULES <= set(RULES)

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1

    def test_lint_source_flow_flag_skips_flow_rules(self):
        source, path = load_fixture("BCL013_bad.py")
        assert lint_source(source, path, flow=False) == []
        assert {v.code for v in lint_source(source, path)} == {"BCL013"}


class TestResultCache:
    def test_cache_roundtrip(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("import random\nx = random.random()\n")
        cache_dir = tmp_path / "cache"
        first = lint_file(target, cache_dir)
        assert [v.code for v in first] == ["BCL005"]
        assert list(cache_dir.glob("*.json")), "cache entry must be written"
        second = lint_file(target, cache_dir)
        assert second == first

    def test_cache_invalidated_on_edit(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import random\nx = random.random()\n")
        cache_dir = tmp_path / "cache"
        assert lint_file(target, cache_dir)
        target.write_text("x = 1\n")
        assert lint_file(target, cache_dir) == []

    def test_engine_fingerprint_is_stable(self):
        assert engine_fingerprint() == engine_fingerprint()
        assert len(engine_fingerprint()) == 64

    def test_parallel_jobs_match_serial(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nx = random.random()\n")
        (tmp_path / "b.py").write_text("y = 1\n")
        serial = lint_paths([tmp_path], jobs=1)
        parallel = lint_paths([tmp_path], jobs=2)
        assert sorted(parallel, key=lambda v: v.path) == sorted(
            serial, key=lambda v: v.path
        )


class TestCli:
    def test_cli_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target), "--no-cache"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_violation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nx = random.random()\n")
        assert main([str(target), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "BCL005" in out and "bad.py:2" in out

    def test_cli_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_cli_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nx = random.random()\n")
        assert main([str(target), "--no-cache", "--format", "json"]) == 1
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["code"] == "BCL005" and rows[0]["line"] == 2

    def test_cli_sarif_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nx = random.random()\n")
        assert main([str(target), "--no-cache", "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "bcache-lint"
        assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == set(
            RULES
        )
        result = run["results"][0]
        assert result["ruleId"] == "BCL005"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2

    def test_cli_uses_cache_dir(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        cache_dir = tmp_path / "lint-cache"
        assert main([str(target), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert list(cache_dir.glob("*.json"))

    def test_sarif_empty_run_is_valid(self):
        document = json.loads(render_sarif([]))
        assert document["runs"][0]["results"] == []

    def test_json_render_roundtrip(self):
        violation = Violation("a.py", 1, "BCL005", "msg")
        assert json.loads(render_json([violation]))[0]["path"] == "a.py"


# ----------------------------------------------------------------------
# The repo itself must stay clean under all 15 rules (acceptance).
# ----------------------------------------------------------------------
def test_repo_is_lint_clean():
    violations = lint_paths([REPO_SRC])
    assert violations == [], "\n".join(v.render() for v in violations)
