"""The custom lint pass: every rule fires on a crafted bad example,
stays quiet on the idiomatic equivalent, and the repo itself is clean."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    Violation,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
HOT_PATH = "src/repro/caches/example.py"
COLD_PATH = "src/repro/experiments/example.py"


def codes(source: str, path: str = HOT_PATH) -> set[str]:
    return {violation.code for violation in lint_source(source, path)}


# ----------------------------------------------------------------------
# BCL001 — interface completeness
# ----------------------------------------------------------------------
class TestCacheInterface:
    def test_missing_methods_fire(self):
        source = (
            "class BrokenCache(Cache):\n"
            "    def _access_block(self, block: int, is_write: bool) -> int:\n"
            "        return 0\n"
        )
        violations = lint_source(source, HOT_PATH)
        assert [v.code for v in violations] == ["BCL001"]
        assert "_probe_block" in violations[0].message
        assert "_flush_state" in violations[0].message

    def test_complete_subclass_is_clean(self):
        source = (
            "class GoodCache(Cache):\n"
            "    def _access_block(self, block: int, is_write: bool) -> int:\n"
            "        return 0\n"
            "    def _probe_block(self, block: int) -> bool:\n"
            "        return False\n"
            "    def _flush_state(self) -> None:\n"
            "        pass\n"
        )
        assert codes(source) == set()

    def test_abstract_intermediate_is_exempt(self):
        source = (
            "class PartialCache(Cache):\n"
            "    @abc.abstractmethod\n"
            "    def _access_block(self, block: int, is_write: bool) -> int: ...\n"
        )
        assert "BCL001" not in codes(source)

    def test_indirect_subclass_may_inherit_interface(self):
        # HighlyAssociativeCache(SetAssociativeCache) inherits all three.
        source = "class DerivedCache(SetAssociativeCache):\n    pass\n"
        assert "BCL001" not in codes(source)


# ----------------------------------------------------------------------
# BCL002 — statistics routed through the base class
# ----------------------------------------------------------------------
class TestStatsRouting:
    def test_access_override_fires(self):
        source = (
            "class SneakyCache(Cache):\n"
            "    def access(self, address, is_write=False):\n"
            "        return None\n"
        )
        assert "BCL002" in codes(source)

    def test_run_override_fires(self):
        source = (
            "class SneakyCache(SetAssociativeCache):\n"
            "    def run(self, trace):\n"
            "        return None\n"
        )
        assert "BCL002" in codes(source)

    def test_non_cache_class_may_define_access(self):
        source = "class CacheLevel:\n    def access(self, address):\n        pass\n"
        assert "BCL002" not in codes(source)

    def test_access_trace_override_fires(self):
        source = (
            "class SneakyCache(Cache):\n"
            "    def access_trace(self, addresses, kinds=None):\n"
            "        return self.stats\n"
        )
        assert "BCL002" in codes(source)

    def test_batch_trace_override_is_clean(self):
        source = (
            "class FastCache(DirectMappedCache):\n"
            "    def _batch_trace(self, addresses, kinds):\n"
            "        return self.stats\n"
        )
        assert "BCL002" not in codes(source)


# ----------------------------------------------------------------------
# BCL003 — slots on hot-path dataclasses
# ----------------------------------------------------------------------
class TestSlots:
    def test_missing_slots_fires_in_hot_module(self):
        source = "@dataclass(frozen=True)\nclass Point:\n    x: int\n"
        assert codes(source) == {"BCL003"}

    def test_bare_decorator_fires(self):
        source = "@dataclass\nclass Point:\n    x: int\n"
        assert codes(source) == {"BCL003"}

    def test_slots_true_is_clean(self):
        source = "@dataclass(frozen=True, slots=True)\nclass Point:\n    x: int\n"
        assert codes(source) == set()

    def test_cold_modules_are_exempt(self):
        source = "@dataclass\nclass Row:\n    x: int\n"
        assert codes(source, COLD_PATH) == set()


# ----------------------------------------------------------------------
# BCL004 — geometry via log2_exact
# ----------------------------------------------------------------------
class TestLog2Exact:
    def test_int_math_log2_fires_anywhere(self):
        source = "import math\nbits = int(math.log2(sets))\n"
        assert "BCL004" in codes(source, COLD_PATH)

    def test_math_log2_fires_in_geometry_modules(self):
        source = "import math\nbits = math.log2(sets)\n"
        assert "BCL004" in codes(source, "src/repro/core/example.py")

    def test_math_log2_allowed_in_energy_models(self):
        source = "import math\nbits = math.log2(sets)\n"
        assert codes(source, "src/repro/energy/example.py") == set()

    def test_log2_exact_is_clean(self):
        source = "bits = log2_exact(sets, 'number of sets')\n"
        assert codes(source) == set()


# ----------------------------------------------------------------------
# BCL005 — no unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandom:
    @pytest.mark.parametrize(
        "call", ["random.random()", "random.randint(0, 7)", "random.shuffle(x)"]
    )
    def test_module_level_calls_fire(self, call):
        assert "BCL005" in codes(f"import random\ny = {call}\n", COLD_PATH)

    def test_seedless_random_instance_fires(self):
        assert "BCL005" in codes("rng = random.Random()\n", COLD_PATH)

    def test_seeded_random_instance_is_clean(self):
        assert codes("rng = random.Random(2006)\n", COLD_PATH) == set()


# ----------------------------------------------------------------------
# BCL006 — integral index/tag computation
# ----------------------------------------------------------------------
class TestFloatIndex:
    def test_true_division_fires(self):
        source = (
            "class C(Cache):\n"
            "    def _access_block(self, block: int, is_write: bool) -> int:\n"
            "        return block / self.num_sets\n"
            "    def _probe_block(self, block: int) -> bool:\n"
            "        return False\n"
            "    def _flush_state(self) -> None: ...\n"
        )
        assert "BCL006" in codes(source)

    def test_float_call_fires(self):
        source = (
            "def decompose_block(self, block: int) -> int:\n"
            "    return float(block)\n"
        )
        assert "BCL006" in codes(source)

    def test_floor_division_is_clean(self):
        source = (
            "def set_index(self, row: int, cluster: int) -> int:\n"
            "    return (cluster * self.num_rows + row) // 1\n"
        )
        assert "BCL006" not in codes(source)

    def test_division_outside_index_funcs_is_clean(self):
        source = "def miss_rate(self) -> float:\n    return self.m / self.n\n"
        assert "BCL006" not in codes(source)


# ----------------------------------------------------------------------
# BCL007 — mutable defaults
# ----------------------------------------------------------------------
class TestMutableDefaults:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "list()"])
    def test_mutable_default_fires(self, default):
        assert "BCL007" in codes(f"def f(x={default}):\n    return x\n", COLD_PATH)

    def test_none_default_is_clean(self):
        assert codes("def f(x=None):\n    return x\n", COLD_PATH) == set()


# ----------------------------------------------------------------------
# BCL008 — interface annotations
# ----------------------------------------------------------------------
class TestInterfaceAnnotations:
    def test_unannotated_override_fires(self):
        source = (
            "class C(Cache):\n"
            "    def _access_block(self, block, is_write):\n"
            "        return 0\n"
            "    def _probe_block(self, block: int) -> bool:\n"
            "        return False\n"
            "    def _flush_state(self) -> None: ...\n"
        )
        violations = [v for v in lint_source(source, HOT_PATH) if v.code == "BCL008"]
        assert len(violations) == 2  # params and return annotation
        assert "block" in violations[0].message

    def test_fully_annotated_is_clean(self):
        source = (
            "def _probe_block(self, block: int) -> bool:\n"
            "    return False\n"
        )
        assert codes(source) == set()


# ----------------------------------------------------------------------
# Mechanics: noqa, syntax errors, file discovery, CLI
# ----------------------------------------------------------------------
# ----------------------------------------------------------------------
# BCL009 — allocation-free batch kernels
# ----------------------------------------------------------------------
class TestBatchAllocation:
    def test_allocation_in_batch_loop_fires(self):
        source = (
            "class SlowCache(DirectMappedCache):\n"
            "    def _batch_trace(self, addresses, kinds):\n"
            "        for address in addresses:\n"
            "            result = AccessResult(hit=True, set_index=0)\n"
            "        return self.stats\n"
        )
        assert "BCL009" in codes(source)

    def test_allocation_in_access_trace_loop_fires(self):
        source = (
            "def access_trace(self, addresses, kinds=None):\n"
            "    while addresses:\n"
            "        AccessResult(hit=False, set_index=1)\n"
        )
        assert "BCL009" in codes(source)

    def test_allocation_in_comprehension_fires(self):
        source = (
            "def _batch_trace(self, addresses, kinds):\n"
            "    return [AccessResult(hit=True, set_index=0) for _ in addresses]\n"
        )
        assert "BCL009" in codes(source)

    def test_allocation_outside_loop_is_clean(self):
        source = (
            "def _batch_trace(self, addresses, kinds):\n"
            "    sentinel = AccessResult(hit=False, set_index=0)\n"
            "    for address in addresses:\n"
            "        pass\n"
            "    return sentinel\n"
        )
        assert "BCL009" not in codes(source)

    def test_loop_in_other_function_is_clean(self):
        source = (
            "def _access_block(self, block: int, is_write: bool) -> int:\n"
            "    for _ in range(2):\n"
            "        AccessResult(hit=True, set_index=0)\n"
            "    return 0\n"
        )
        assert "BCL009" not in codes(source)

    def test_helper_nested_in_batch_kernel_fires(self):
        source = (
            "def _batch_trace(self, addresses, kinds):\n"
            "    def drain():\n"
            "        for address in addresses:\n"
            "            AccessResult(hit=True, set_index=0)\n"
            "    drain()\n"
        )
        assert "BCL009" in codes(source)


# ----------------------------------------------------------------------
# BCL010 — engine code must not swallow failures or retry blind
# ----------------------------------------------------------------------
ENGINE_PATH = "src/repro/engine/example.py"


class TestEngineExceptionHygiene:
    def test_bare_except_fires(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except:\n"
            "    handle()\n"
        )
        assert "BCL010" in codes(source, ENGINE_PATH)

    def test_except_exception_pass_fires(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert "BCL010" in codes(source, ENGINE_PATH)

    def test_except_base_exception_ellipsis_fires(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except BaseException:\n"
            "    ...\n"
        )
        assert "BCL010" in codes(source, ENGINE_PATH)

    def test_broad_handler_with_real_body_is_clean(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except Exception as exc:\n"
            "    log.warning('failed: %s', exc)\n"
        )
        assert "BCL010" not in codes(source, ENGINE_PATH)

    def test_narrow_except_pass_is_clean(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except ValueError:\n"
            "    pass\n"
        )
        assert "BCL010" not in codes(source, ENGINE_PATH)

    def test_retry_loop_without_backoff_fires(self):
        source = (
            "while True:\n"
            "    try:\n"
            "        return job()\n"
            "    except Exception:\n"
            "        attempt += 1\n"
            "        continue\n"
        )
        assert "BCL010" in codes(source, ENGINE_PATH)

    def test_retry_for_range_without_backoff_fires(self):
        source = (
            "for attempt in range(5):\n"
            "    try:\n"
            "        return job()\n"
            "    except OSError:\n"
            "        continue\n"
        )
        assert "BCL010" in codes(source, ENGINE_PATH)

    def test_retry_loop_with_sleep_is_clean(self):
        source = (
            "while True:\n"
            "    try:\n"
            "        return job()\n"
            "    except Exception:\n"
            "        time.sleep(policy.delay(attempt, rng))\n"
            "        continue\n"
        )
        assert "BCL010" not in codes(source, ENGINE_PATH)

    def test_non_engine_modules_are_exempt(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert "BCL010" not in codes(source, COLD_PATH)
        assert "BCL010" not in codes(source, HOT_PATH)

    def test_noqa_suppresses(self):
        source = (
            "try:\n"
            "    risky()\n"
            "except Exception:  # noqa: BCL010\n"
            "    pass\n"
        )
        assert "BCL010" not in codes(source, ENGINE_PATH)


# ----------------------------------------------------------------------
# BCL011 — serve coroutines must not block the event loop
# ----------------------------------------------------------------------
SERVE_PATH = "src/repro/serve/example.py"


class TestServeBlockingCalls:
    def test_time_sleep_in_coroutine_fires(self):
        source = (
            "async def handler(reader, writer):\n"
            "    time.sleep(0.1)\n"
        )
        assert "BCL011" in codes(source, SERVE_PATH)

    def test_open_in_coroutine_fires(self):
        source = (
            "async def handler(path):\n"
            "    with open(path) as fh:\n"
            "        return fh\n"
        )
        assert "BCL011" in codes(source, SERVE_PATH)

    def test_path_io_methods_fire(self):
        source = (
            "async def handler(path):\n"
            "    path.write_text('x')\n"
            "    return path.read_bytes()\n"
        )
        violations = lint_source(source, SERVE_PATH)
        assert [v.code for v in violations] == ["BCL011", "BCL011"]

    def test_future_result_fires(self):
        source = (
            "async def handler(fut):\n"
            "    return fut.result()\n"
        )
        assert "BCL011" in codes(source, SERVE_PATH)

    def test_asyncio_sleep_is_clean(self):
        source = (
            "async def handler():\n"
            "    await asyncio.sleep(0.1)\n"
        )
        assert codes(source, SERVE_PATH) == set()

    def test_run_in_executor_is_clean(self):
        source = (
            "async def handler(loop, conn, payloads):\n"
            "    return await loop.run_in_executor(None, roundtrip, payloads)\n"
        )
        assert codes(source, SERVE_PATH) == set()

    def test_sync_function_may_block(self):
        # Plain functions run in executor threads, where blocking is fine.
        source = (
            "def roundtrip(conn, payloads):\n"
            "    time.sleep(0.1)\n"
            "    return open('x')\n"
        )
        assert codes(source, SERVE_PATH) == set()

    def test_nested_sync_helper_in_coroutine_is_clean(self):
        source = (
            "async def handler(loop, path):\n"
            "    def read():\n"
            "        return path.read_text()\n"
            "    return await loop.run_in_executor(None, read)\n"
        )
        assert codes(source, SERVE_PATH) == set()

    def test_non_serve_modules_are_exempt(self):
        source = (
            "async def handler():\n"
            "    time.sleep(0.1)\n"
        )
        assert "BCL011" not in codes(source, ENGINE_PATH)
        assert "BCL011" not in codes(source, COLD_PATH)

    def test_noqa_suppresses(self):
        source = (
            "async def handler():\n"
            "    time.sleep(0.1)  # noqa: BCL011\n"
        )
        assert codes(source, SERVE_PATH) == set()


# ----------------------------------------------------------------------
# BCL012 — telemetry: spans are context managers, metric names match
# the exposition contract
# ----------------------------------------------------------------------
class TestObsTelemetryContract:
    def test_bare_span_call_fires(self):
        source = (
            "def run():\n"
            "    span('job.run', key='k')\n"
            "    do_work()\n"
        )
        assert "BCL012" in codes(source, COLD_PATH)

    def test_manual_enter_fires(self):
        source = (
            "def run():\n"
            "    cm = obs_events.span('job.run').__enter__()\n"
        )
        assert "BCL012" in codes(source, COLD_PATH)

    def test_with_span_is_clean(self):
        source = (
            "def run():\n"
            "    with obs_events.span('job.run', key='k'):\n"
            "        do_work()\n"
        )
        assert codes(source, COLD_PATH) == set()

    def test_with_span_as_target_is_clean(self):
        source = (
            "def run():\n"
            "    with span('job.run') as s, open_log() as log:\n"
            "        do_work()\n"
        )
        assert codes(source, COLD_PATH) == set()

    def test_exit_stack_enter_context_is_clean(self):
        # enter_context still routes through __exit__ on unwind.
        source = (
            "def run(stack):\n"
            "    stack.enter_context(span('job.run'))\n"
        )
        assert codes(source, COLD_PATH) == set()

    def test_bad_metric_name_fires(self):
        for call in (
            "registry.counter('jobs_total')",          # missing prefix
            "registry.gauge('repro_Queue_depth')",     # uppercase
            "registry.histogram('repro_batch-size')",  # hyphen
        ):
            assert "BCL012" in codes(call + "\n", COLD_PATH), call

    def test_good_metric_name_is_clean(self):
        source = (
            "registry.counter('repro_engine_jobs_total', help='x')\n"
            "registry.gauge('repro_serve_queue_depth')\n"
            "registry.histogram('repro_serve_batch_size')\n"
        )
        assert codes(source, COLD_PATH) == set()

    def test_non_metric_calls_are_exempt(self):
        # collections.Counter / np.histogram are not registry factories.
        source = (
            "c = Counter('abcabc')\n"
            "h = np.histogram(values, bins=10)\n"
        )
        assert codes(source, COLD_PATH) == set()

    def test_noqa_suppresses(self):
        source = "span('job.run')  # noqa: BCL012\n"
        assert codes(source, COLD_PATH) == set()


class TestMechanics:
    def test_noqa_with_code_suppresses(self):
        source = "rng = random.Random()  # noqa: BCL005\n"
        assert codes(source, COLD_PATH) == set()

    def test_bare_noqa_suppresses(self):
        source = "rng = random.Random()  # noqa\n"
        assert codes(source, COLD_PATH) == set()

    def test_noqa_for_other_code_does_not_suppress(self):
        source = "rng = random.Random()  # noqa: BCL001\n"
        assert codes(source, COLD_PATH) == {"BCL005"}

    def test_syntax_error_reported_as_bcl000(self):
        violations = lint_source("def broken(:\n", COLD_PATH)
        assert [v.code for v in violations] == ["BCL000"]

    def test_violation_render_format(self):
        violation = Violation("a/b.py", 3, "BCL005", "message")
        assert violation.render() == "a/b.py:3: BCL005 message"

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache_dir = tmp_path / "__pycache__"
        cache_dir.mkdir()
        (cache_dir / "bad.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["ok.py"]

    def test_cli_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_violation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nx = random.random()\n")
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "BCL005" in out and "bad.py:2" in out

    def test_cli_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out


# ----------------------------------------------------------------------
# The repo itself must stay clean (acceptance criterion).
# ----------------------------------------------------------------------
def test_repo_is_lint_clean():
    violations = lint_paths([REPO_SRC])
    assert violations == [], "\n".join(v.render() for v in violations)
