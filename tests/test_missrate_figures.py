"""Tests for the miss-rate figure harness internals."""

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.missrate_figures import (
    Fig12Result,
    ReductionPanel,
    run_fig4,
    run_fig5,
    run_fig12,
    run_panel,
)

TINY = ExperimentScale(data_n=5_000, instr_n=5_000, instructions=2_000)
SPECS = ("2way", "8way", "mf8_bas8")


@pytest.fixture(scope="module")
def panel() -> ReductionPanel:
    return run_panel(("gzip", "mcf"), "data", TINY, specs=SPECS)


class TestReductionPanel:
    def test_structure(self, panel):
        assert panel.benchmarks == ("gzip", "mcf")
        assert panel.specs == SPECS
        assert set(panel.reductions) == set(SPECS)

    def test_baseline_rates_recorded(self, panel):
        assert 0.0 < panel.baseline_rates["gzip"] < 1.0

    def test_average_is_mean_of_benchmarks(self, panel):
        spec = "8way"
        manual = sum(panel.reductions[spec].values()) / 2
        assert panel.average(spec) == pytest.approx(manual)

    def test_render_contains_all_rows(self, panel):
        text = panel.render()
        for benchmark in panel.benchmarks:
            assert benchmark in text
        assert "Ave" in text

    def test_render_chart(self, panel):
        chart = panel.render_chart()
        assert "#" in chart

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError):
            run_panel(("gzip",), "both", TINY, specs=("2way",))


class TestFigureRunners:
    def test_fig4_panels_cover_suites(self):
        result = run_fig4(TINY.scaled(0.5))
        assert len(result.cint.benchmarks) == 12
        assert len(result.cfp.benchmarks) == 14
        text = result.render()
        assert "CFP2K" in text and "CINT2K" in text

    def test_fig5_covers_reported(self):
        panel = run_fig5(TINY.scaled(0.5))
        assert len(panel.benchmarks) == 15
        assert panel.side == "instr"

    def test_fig12_four_panels(self):
        result = run_fig12(
            ExperimentScale(data_n=2_000, instr_n=2_000, instructions=1_000)
        )
        assert isinstance(result, Fig12Result)
        assert len(result.panels) == 4
        sizes = [panel.size for panel in result.panels]
        assert sizes == [32 * 1024, 32 * 1024, 8 * 1024, 8 * 1024]
        assert "32K D$" in result.render()
