"""Event log, spans and REPRO_OBS tiers (repro.obs.events)."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import events as obs_events
from repro.obs.events import (
    EventLog,
    read_events,
    span,
    tail_events,
)


@pytest.fixture
def events_log(tmp_path):
    """Switch the tier to ``events`` with a log in tmp_path."""
    path = tmp_path / "events.jsonl"
    obs_events.configure(mode="events", log_path=path)
    return path


# ----------------------------------------------------------------------
# Tiers
# ----------------------------------------------------------------------
class TestTiers:
    def test_default_tier_is_off(self, monkeypatch):
        monkeypatch.delenv(obs_events.ENV_MODE, raising=False)
        obs_events.reset()
        assert obs_events.mode() == "off"
        assert not obs_events.enabled()
        assert not obs_events.metrics_enabled()

    def test_env_selects_tier(self, monkeypatch):
        monkeypatch.setenv(obs_events.ENV_MODE, "full")
        obs_events.reset()
        assert obs_events.mode() == "full"
        assert obs_events.enabled()
        assert obs_events.metrics_enabled()

    def test_unknown_env_value_treated_as_off(self, monkeypatch):
        monkeypatch.setenv(obs_events.ENV_MODE, "verbose")
        obs_events.reset()
        assert obs_events.mode() == "off"

    def test_configure_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            obs_events.configure(mode="loud")

    def test_off_tier_writes_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs_events.configure(mode="off", log_path=path)
        obs_events.emit("point", x=1)
        with span("block"):
            pass
        assert not path.exists()


# ----------------------------------------------------------------------
# Emitting
# ----------------------------------------------------------------------
class TestEmit:
    def test_emit_writes_one_json_line(self, events_log):
        obs_events.emit("trace.miss", benchmark="gcc", seconds=0.25)
        lines = events_log.read_bytes().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "trace.miss"
        assert record["benchmark"] == "gcc"
        assert record["pid"] == os.getpid()
        assert "t" in record and "mono" in record

    def test_span_emits_duration_and_ok(self, events_log):
        with span("job.run", key="k1"):
            pass
        (record,) = read_events(events_log)
        assert record["name"] == "job.run"
        assert record["ok"] is True
        assert record["key"] == "k1"
        assert record["dur_s"] >= 0.0

    def test_span_records_failure_and_reraises(self, events_log):
        with pytest.raises(RuntimeError):
            with span("job.run", key="k1"):
                raise RuntimeError("boom")
        (record,) = read_events(events_log)
        assert record["ok"] is False

    def test_emit_never_raises_on_unwritable_log(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        log = EventLog(target / "events.jsonl")  # parent is a file
        log.emit("x")  # must not raise
        assert log.dropped == 1

    def test_log_to_routes_and_restores(self, events_log, tmp_path):
        run_log = tmp_path / "run" / "events.jsonl"
        with obs_events.log_to(run_log):
            obs_events.emit("inside")
        obs_events.emit("outside")
        assert [e["name"] for e in read_events(run_log)] == ["inside"]
        assert [e["name"] for e in read_events(events_log)] == ["outside"]


# ----------------------------------------------------------------------
# Reading: torn-tail tolerance (satellite d)
# ----------------------------------------------------------------------
class TestTailEvents:
    def test_torn_tail_not_consumed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"name":"a"}\n{"name":"b"')  # writer died mid-line
        events, offset = tail_events(path, 0)
        assert [e["name"] for e in events] == ["a"]
        # Completing the line later makes the next tail pick it up.
        with open(path, "ab") as handle:
            handle.write(b',"x":1}\n')
        events, offset = tail_events(path, offset)
        assert [e["name"] for e in events] == ["b"]
        assert offset == path.stat().st_size

    def test_corrupt_complete_line_skipped_and_consumed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"name":"a"}\n###garbage###\n{"name":"c"}\n')
        events, offset = tail_events(path, 0)
        assert [e["name"] for e in events] == ["a", "c"]
        assert offset == path.stat().st_size
        # The garbage is behind the offset: never re-read.
        events, _ = tail_events(path, offset)
        assert events == []

    def test_missing_file_returns_empty(self, tmp_path):
        events, offset = tail_events(tmp_path / "nope.jsonl", 7)
        assert events == [] and offset == 7

    def test_non_dict_lines_ignored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'[1,2]\n"str"\n{"name":"a"}\n')
        assert [e["name"] for e in read_events(path)] == ["a"]

    def test_incremental_offsets_see_each_event_once(self, events_log):
        offset = 0
        seen = []
        for i in range(3):
            obs_events.emit("tick", i=i)
            events, offset = tail_events(events_log, offset)
            seen.extend(e["i"] for e in events)
        assert seen == [0, 1, 2]


# ----------------------------------------------------------------------
# bcache-bench raw iteration samples land in the event log
# ----------------------------------------------------------------------
class TestBenchIterationEvents:
    def test_hot_loop_emits_one_event_per_sample(self, events_log):
        from repro.engine.bench import HOT_SPECS, bench_hot_loop

        from repro.caches import columnar

        bench_hot_loop(n=400, repeats=2, benchmark="gzip")
        samples = [
            e for e in read_events(events_log) if e["name"] == "bench.iteration"
        ]
        # repeats × flavours per spec, every raw sample kept: scalar and
        # stdlib always, plus the numpy batch when the probe passes.
        flavours = 3 if columnar.numpy_enabled() else 2
        assert len(samples) == len(HOT_SPECS) * 2 * flavours
        first = samples[0]
        assert first["flavor"] in ("scalar", "stdlib", "batch")
        assert first["refs"] == 400
        assert first["dur_s"] >= 0.0

    def test_full_tier_also_records_histogram(self, tmp_path):
        from repro.obs.instrument import bench_iteration
        from repro.obs.metrics import default_registry

        obs_events.configure(mode="full", log_path=tmp_path / "e.jsonl")
        bench_iteration("dm", "batch", 0, 0.01, 1000)
        hist = default_registry().histogram("repro_bench_iteration_seconds")
        assert hist.count(spec="dm", flavor="batch") == 1


# ----------------------------------------------------------------------
# Zero-overhead contract: REPRO_OBS=off must not change results
# (satellite d — bit-identical CacheStats)
# ----------------------------------------------------------------------
class TestOffTierIdenticalResults:
    def _run(self, tmp_path, mode):
        from repro.engine.runner import SweepJob, execute_job
        from repro.engine.trace_store import TraceStore

        obs_events.configure(
            mode=mode, log_path=tmp_path / f"events-{mode}.jsonl"
        )
        store = TraceStore(tmp_path / "store", fsync=False)
        jobs = [
            SweepJob(spec=spec, benchmark="gcc", n=5_000)
            for spec in ("dm", "mf8_bas8")
        ]
        return [execute_job(job, store=store).snapshot() for job in jobs]

    def test_off_and_full_tiers_produce_identical_stats(self, tmp_path):
        baseline = self._run(tmp_path, "off")
        instrumented = self._run(tmp_path, "full")
        assert baseline == instrumented
