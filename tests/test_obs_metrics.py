"""Metrics registry and Prometheus exposition (repro.obs)."""

from __future__ import annotations

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE,
    ExpositionError,
    parse_text,
    render,
)
from repro.obs.metrics import (
    MetricError,
    MetricsRegistry,
    log_buckets,
)


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc_value_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", help="a counter")
        counter.inc(shard="0")
        counter.inc(2.0, shard="0")
        counter.inc(shard="1")
        assert counter.value(shard="0") == 3.0
        assert counter.value(shard="1") == 1.0
        assert counter.value(shard="9") == 0.0
        assert counter.total() == 4.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("repro_test_total").inc(-1.0)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_depth")
        gauge.set(5.0, shard="0")
        gauge.add(-2.0, shard="0")
        assert gauge.value(shard="0") == 3.0

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_a_total") is registry.counter("repro_a_total")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(MetricError):
            registry.gauge("repro_a_total")

    def test_invalid_name_raises(self):
        registry = MetricsRegistry()
        for bad in ("jobs_total", "repro_Jobs", "repro_batch-size", ""):
            with pytest.raises(MetricError):
                registry.counter(bad)

    def test_log_buckets_geometric(self):
        assert log_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(MetricError):
            log_buckets(0.0, 2.0, 4)
        with pytest.raises(MetricError):
            log_buckets(1.0, 1.0, 4)


# ----------------------------------------------------------------------
# Histogram bucket boundaries (satellite d)
# ----------------------------------------------------------------------
class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` semantics: a value equal to an upper bound
        # belongs to that bucket, not the next one.
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 99.0):
            hist.observe(value)
        series = hist.series()
        assert series.bucket_counts == [2, 2, 1, 1]  # le=1, le=2, le=4, +Inf
        assert hist.count() == 6
        assert hist.sum() == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 99.0)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("repro_test_seconds", buckets=(2.0, 1.0))

    def test_approx_percentile_interpolates(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.2, 0.4, 0.6, 0.8):
            hist.observe(value)
        # All mass in the first bucket: estimates stay within (0, 1].
        p50 = hist.approx_percentile(50.0)
        assert 0.0 < p50 <= 1.0
        assert hist.approx_percentile(5.0) <= hist.approx_percentile(95.0)

    def test_percentile_of_empty_series_raises(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds")
        with pytest.raises(ValueError):
            hist.approx_percentile(50.0)


# ----------------------------------------------------------------------
# Exposition round-trip (satellite d)
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    jobs = registry.counter("repro_engine_jobs_total", help="completed jobs")
    jobs.inc(3, status="done")
    jobs.inc(1, status="failed")
    depth = registry.gauge("repro_serve_queue_depth", help="in-flight batches")
    depth.set(2, shard="0")
    sizes = registry.histogram(
        "repro_serve_batch_size", help="jobs per batch", buckets=(1.0, 2.0, 4.0)
    )
    for value in (1, 1, 3, 9):
        sizes.observe(value)
    weird = registry.counter("repro_escape_total", help='tricky "help" \\ text')
    weird.inc(1, path='a"b\\c\nd')
    return registry


class TestExpositionRoundTrip:
    def test_content_type_is_prometheus_004(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_render_parse_round_trip(self):
        families = parse_text(render(_populated_registry()))
        jobs = families["repro_engine_jobs_total"]
        assert jobs.kind == "counter"
        assert jobs.help == "completed jobs"
        assert jobs.sample_value(status="done") == 3.0
        assert jobs.sample_value(status="failed") == 1.0
        depth = families["repro_serve_queue_depth"]
        assert depth.kind == "gauge"
        assert depth.sample_value(shard="0") == 2.0

    def test_histogram_expansion_is_cumulative(self):
        families = parse_text(render(_populated_registry()))
        sizes = families["repro_serve_batch_size"]
        assert sizes.kind == "histogram"
        bucket = "repro_serve_batch_size_bucket"
        assert sizes.sample_value(bucket, le="1") == 2.0
        assert sizes.sample_value(bucket, le="2") == 2.0
        assert sizes.sample_value(bucket, le="4") == 3.0
        assert sizes.sample_value(bucket, le="+Inf") == 4.0
        assert sizes.sample_value("repro_serve_batch_size_count") == 4.0
        assert sizes.sample_value("repro_serve_batch_size_sum") == 14.0

    def test_label_escaping_survives_round_trip(self):
        families = parse_text(render(_populated_registry()))
        weird = families["repro_escape_total"]
        assert weird.sample_value(path='a"b\\c\nd') == 1.0

    def test_missing_sample_raises_key_error(self):
        families = parse_text(render(_populated_registry()))
        with pytest.raises(KeyError):
            families["repro_engine_jobs_total"].sample_value(status="nope")

    def test_parse_rejects_garbage(self):
        for text in (
            "repro_x_total{ 1.0\n",
            "repro_x_total not_a_number\n",
            "just some words\n",
        ):
            with pytest.raises(ExpositionError):
                parse_text(text)

    def test_empty_registry_renders_empty(self):
        assert parse_text(render(MetricsRegistry())) == {}


# ----------------------------------------------------------------------
# Cross-process delta forwarding (shard workers -> server registry)
# ----------------------------------------------------------------------
class TestDeltaForwarding:
    def test_drain_then_merge_reproduces_values(self):
        worker = _populated_registry()
        parent = MetricsRegistry()
        parent.counter("repro_engine_jobs_total").inc(10, status="done")
        parent.merge_deltas(worker.drain_deltas())
        merged = parse_text(render(parent))
        assert merged["repro_engine_jobs_total"].sample_value(status="done") == 13.0
        sizes = merged["repro_serve_batch_size"]
        assert sizes.sample_value("repro_serve_batch_size_count") == 4.0

    def test_drain_resets_counters_and_histograms(self):
        worker = _populated_registry()
        worker.drain_deltas()
        assert worker.counter("repro_engine_jobs_total").total() == 0.0
        assert worker.histogram("repro_serve_batch_size").count() == 0
        # Gauges report their level and keep it (last-write-wins).
        assert worker.gauge("repro_serve_queue_depth").value(shard="0") == 2.0

    def test_second_drain_reports_only_new_activity(self):
        worker = _populated_registry()
        worker.drain_deltas()
        worker.counter("repro_engine_jobs_total").inc(status="done")
        parent = MetricsRegistry()
        parent.merge_deltas(worker.drain_deltas())
        assert parent.counter("repro_engine_jobs_total").value(status="done") == 1.0

    def test_merge_rejects_malformed_delta(self):
        parent = MetricsRegistry()
        with pytest.raises(MetricError):
            parent.merge_deltas([{"nonsense": True}])
