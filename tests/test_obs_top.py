"""bcache-top: event folding, rendering, CLI (repro.obs.top)."""

from __future__ import annotations

import json

import pytest

from repro.obs.exposition import parse_text
from repro.obs.top import (
    RETRY_STORM_THRESHOLD,
    SweepModel,
    main,
    poll_fleet,
    render_fleet,
    render_server,
    render_sweep,
)


def _event(name: str, *, pid: int = 100, mono: float = 1.0, **fields):
    return {"name": name, "pid": pid, "mono": mono, **fields}


def _sweep_events():
    events = [
        _event("engine.resilient_sweep", run_id="panel", jobs=4, mono=0.5)
    ]
    for i, benchmark in enumerate(["gcc", "gcc", "mcf", "mcf"]):
        events.append(
            _event("job.queued", benchmark=benchmark, mono=1.0 + i)
        )
    events += [
        _event("job.running", benchmark="gcc", pid=101, mono=5.0),
        _event("job.done", benchmark="gcc", miss_rate=0.10, mono=6.0),
        _event("job.done", benchmark="gcc", miss_rate=0.20, mono=7.0),
        _event("job.retried", benchmark="mcf", mono=8.0),
        _event("job.failed", benchmark="mcf", mono=9.0),
    ]
    return events


# ----------------------------------------------------------------------
# Log-mode model + rendering
# ----------------------------------------------------------------------
class TestSweepModel:
    def test_folds_lifecycle_events(self):
        model = SweepModel()
        model.apply_all(_sweep_events())
        assert model.run_id == "panel"
        assert model.total_jobs == 4
        assert model.done_jobs == 2
        gcc = model.benchmarks["gcc"]
        assert (gcc.queued, gcc.done) == (2, 2)
        assert gcc.miss_rate_so_far == pytest.approx(0.15)
        mcf = model.benchmarks["mcf"]
        assert (mcf.failed, mcf.retries) == (1, 1)

    def test_unknown_events_only_count(self):
        model = SweepModel()
        model.apply(_event("kernel.batch", cache="dm"))
        assert model.events_seen == 1
        assert model.benchmarks == {}

    def test_retry_storm_window(self):
        model = SweepModel()
        for i in range(RETRY_STORM_THRESHOLD):
            model.apply(
                _event("job.retried", benchmark="mcf", mono=100.0 + i)
            )
        assert model.retry_storm() >= RETRY_STORM_THRESHOLD
        # An event far in the future ages the retries out of the window.
        model.apply(_event("job.done", benchmark="mcf", mono=500.0))
        assert model.retry_storm() == 0

    def test_render_sweep_shows_progress_and_rates(self):
        model = SweepModel()
        model.apply_all(_sweep_events())
        frame = render_sweep(model)
        assert "run=panel" in frame
        assert "2/4 jobs" in frame
        assert "gcc" in frame and "mcf" in frame
        assert "15.000%" in frame
        assert "workers:" in frame

    def test_render_storm_banner(self):
        model = SweepModel()
        for i in range(RETRY_STORM_THRESHOLD + 1):
            model.apply(_event("job.retried", benchmark="mcf", mono=50.0 + i))
        assert "retry storm" in render_sweep(model)

    def test_render_empty_model(self):
        frame = render_sweep(SweepModel())
        assert "0 job(s) done" in frame


# ----------------------------------------------------------------------
# Connect-mode rendering
# ----------------------------------------------------------------------
def _fake_status():
    return {
        "server": {
            "uptime_s": 12.0,
            "draining": False,
            "requests": 9,
            "completed": 9,
            "errors": 0,
            "shed": 0,
            "inflight_jobs": 0,
            "max_pending": 256,
        },
        "batcher": {
            "batches": 3,
            "mean_batch_size": 3.0,
            "coalesced": 1,
            "batch_errors": 0,
        },
        "shards": [
            {"pid": 41, "alive": True, "uptime_s": 12.0, "batches": 2,
             "jobs": 5, "restarts": 0},
            {"pid": 42, "alive": False, "uptime_s": 1.0, "batches": 1,
             "jobs": 4, "restarts": 2},
        ],
    }


_FAKE_METRICS = """\
# TYPE repro_engine_jobs_total counter
repro_engine_jobs_total{status="done"} 9
# TYPE repro_trace_store_hits_total counter
repro_trace_store_hits_total{tier="memory"} 4
repro_trace_store_hits_total{tier="disk"} 2
# TYPE repro_serve_batch_size histogram
repro_serve_batch_size_bucket{le="4"} 3
repro_serve_batch_size_bucket{le="+Inf"} 3
repro_serve_batch_size_sum 9
repro_serve_batch_size_count 3
"""


class TestRenderServer:
    def test_renders_status_and_metrics(self):
        frame = render_server(_fake_status(), parse_text(_FAKE_METRICS))
        assert "uptime=12s" in frame
        assert "batches 3" in frame
        assert "jobs done 9" in frame
        assert "trace hits mem/disk 4/2" in frame
        assert "scraped batch size 3.00" in frame
        # A dead shard renders as NO with its restart count.
        assert "NO" in frame and " 2" in frame

    def test_renders_without_metrics(self):
        frame = render_server(_fake_status(), None)
        assert "metrics" not in frame
        assert "uptime=12s" in frame

    def test_missing_families_are_omitted(self):
        families = parse_text("# TYPE repro_other_total counter\n")
        frame = render_server(_fake_status(), families)
        assert "jobs done" not in frame


# ----------------------------------------------------------------------
# Fleet mode
# ----------------------------------------------------------------------
class TestRenderFleet:
    def test_renders_one_row_per_node_and_totals(self):
        status = _fake_status()
        status["server"]["shard_restarts_total"] = 2
        rows = [
            ("unix:/tmp/a.sock", status, None),
            ("unix:/tmp/b.sock", None, None),
        ]
        frame = render_fleet(rows)
        assert "1/2 node(s) up" in frame
        lines = frame.splitlines()
        row_a = next(line for line in lines if "a.sock" in line)
        row_b = next(line for line in lines if "b.sock" in line)
        assert "up" in row_a and " 9" in row_a and " 2" in row_a
        assert "DOWN" in row_b
        assert any("completed" in line for line in lines)  # header present

    def test_draining_node_renders_drain_state(self):
        status = _fake_status()
        status["server"]["draining"] = True
        frame = render_fleet([("unix:/tmp/a.sock", status, None)])
        assert "drain" in frame

    def test_steals_column_reads_cluster_metric(self):
        families = parse_text(
            "# TYPE repro_cluster_steals_total counter\n"
            'repro_cluster_steals_total{node="unix:/tmp/a.sock"} 7\n'
        )
        frame = render_fleet([("unix:/tmp/a.sock", _fake_status(), families)])
        row = next(line for line in frame.splitlines() if "a.sock" in line)
        assert " 7" in row

    def test_plain_serve_node_renders_dash_for_steals(self):
        frame = render_fleet([("unix:/tmp/a.sock", _fake_status(), None)])
        row = next(line for line in frame.splitlines() if "a.sock" in line)
        assert " -" in row

    def test_long_address_is_truncated(self):
        address = "unix:/" + "x" * 60 + "/serve.sock"
        frame = render_fleet([(address, None, None)])
        assert "..." in frame

    def test_poll_fleet_marks_unreachable_nodes_down(self, tmp_path, capsys):
        rows = poll_fleet([f"unix:{tmp_path}/ghost.sock"])
        assert rows == [(f"unix:{tmp_path}/ghost.sock", None, None)]
        assert "cannot reach" in capsys.readouterr().err


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_once_renders_log_file(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            "\n".join(json.dumps(e) for e in _sweep_events()) + "\n"
        )
        assert main(["--log", str(log), "--once"]) == 0
        out = capsys.readouterr().out
        assert "bcache-top — sweep" in out
        assert "2/4 jobs" in out

    def test_no_log_found_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_RUN_ROOT", raising=False)
        monkeypatch.setenv("REPRO_OBS_LOG", str(tmp_path / "absent.jsonl"))
        assert main(["--once"]) == 2
        assert "no event log found" in capsys.readouterr().err

    def test_run_root_picks_newest_run(self, tmp_path, capsys):
        old = tmp_path / "run-old"
        new = tmp_path / "run-new"
        for directory, benchmark in ((old, "old"), (new, "new")):
            directory.mkdir()
            (directory / "events.jsonl").write_text(
                json.dumps(_event("job.done", benchmark=benchmark)) + "\n"
            )
        import os
        os.utime(old / "events.jsonl", (1, 1))
        assert main(["--run-root", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "new" in out and "old" not in out.replace("run-old", "")

    def test_unreachable_server_exits_four(self, capsys):
        assert main(["--connect", "127.0.0.1:1", "--once"]) == 4
        assert "cannot reach" in capsys.readouterr().err

    def test_fleet_of_unreachable_nodes_renders_then_exits_four(
        self, tmp_path, capsys
    ):
        code = main([
            "--connect", f"unix:{tmp_path}/a.sock,unix:{tmp_path}/b.sock",
            "--once",
        ])
        captured = capsys.readouterr()
        assert code == 4
        assert "0/2 node(s) up" in captured.out
        assert captured.out.count("DOWN") == 2

    def test_empty_fleet_list_exits_two(self, capsys):
        assert main(["--connect", ",", "--once"]) == 2
        assert "empty fleet" in capsys.readouterr().err

    def test_log_and_connect_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--log", "x", "--connect", "y"])
