"""Integration tests asserting the paper's qualitative results.

These run the real experiment pipeline at reduced trace lengths and
check the *shape* claims of the evaluation: who wins, in which order,
and where the crossovers fall.  Absolute values are not asserted
(synthetic workloads, not SPEC2K binaries).
"""

import pytest

from repro.experiments.common import ExperimentScale, miss_rate, run_side
from repro.stats.summary import average_reduction, miss_rate_reduction

TINY = ExperimentScale(data_n=15_000, instr_n=20_000, instructions=8_000, seed=2006)

#: A representative subset keeps the suite fast; the full 26-benchmark
#: sweeps live in benchmarks/.
SUBSET = ("equake", "crafty", "gzip", "mcf", "wupwise", "facerec")


def reduction(spec: str, benchmark: str, side: str = "data", size: int = 16 * 1024) -> float:
    base = miss_rate("dm", benchmark, side, TINY, size=size)
    rate = miss_rate(spec, benchmark, side, TINY, size=size)
    return miss_rate_reduction(base, rate)


def average(spec: str, side: str = "data", benchmarks=SUBSET) -> float:
    return average_reduction([reduction(spec, b, side) for b in benchmarks])


class TestFigure4Shapes:
    """Data-cache reduction ordering (Figure 4)."""

    def test_equake_reduction_is_large(self):
        """equake: >80% reduction in the paper; conflict-dominated."""
        assert reduction("mf8_bas8", "equake") > 0.6

    def test_bcache_between_4way_and_8way_on_conflict_benchmarks(self):
        for benchmark in ("equake", "crafty"):
            four = reduction("4way", benchmark)
            eight = reduction("8way", benchmark)
            bcache = reduction("mf8_bas8", benchmark)
            assert four - 0.05 <= bcache <= eight + 0.05

    def test_uniform_miss_benchmarks_hardly_improve(self):
        """Section 6.4: art/lucas/swim/mcf <10% for every organisation."""
        for spec in ("2way", "8way", "mf8_bas8", "victim16"):
            assert reduction(spec, "mcf") < 0.12

    def test_mf_sweep_monotone_on_average(self):
        values = [average(f"mf{mf}_bas8") for mf in (2, 4, 8)]
        assert values[0] < values[1] < values[2]

    def test_mf16_adds_little_over_mf8(self):
        """Section 4.3.2: going to MF=16 buys ~1% more on average —
        except for the PD-blinded benchmarks, excluded here."""
        subset = ("equake", "crafty", "gzip", "mcf")
        gain = average("mf16_bas8", benchmarks=subset) - average(
            "mf8_bas8", benchmarks=subset
        )
        assert gain < 0.05

    def test_victim_buffer_below_bcache_on_average(self):
        """Section 6.6: B-Cache beats the 16-entry victim buffer."""
        assert average("victim16") < average("mf8_bas8")


class TestWupwiseStory:
    """Figure 3 / Sections 4.3.2 and 6.6: the PD-blinding pathology."""

    def test_bcache_mf8_below_4way(self):
        assert reduction("mf8_bas8", "wupwise") < reduction("4way", "wupwise")

    def test_victim_buffer_wins_on_wupwise_data(self):
        """The one data stream where the buffer beats the B-Cache."""
        assert reduction("victim16", "wupwise") > reduction("mf8_bas8", "wupwise")

    def test_miss_rate_falls_only_at_large_mf(self):
        rates = {
            mf: miss_rate(f"mf{mf}_bas8", "wupwise", "data", TINY)
            for mf in (8, 64, 512)
        }
        assert rates[8] > rates[64] >= rates[512]

    def test_pd_hit_rate_falls_with_mf(self):
        small = run_side("mf8_bas8", "wupwise", "data", TINY)
        large = run_side("mf512_bas8", "wupwise", "data", TINY)
        assert large.pd_hit_rate_during_miss < small.pd_hit_rate_during_miss

    def test_facerec_unblinds_at_mf16(self):
        """facerec's regions sit 2^17 apart: MF=16 sees the differing bit."""
        assert reduction("mf16_bas8", "facerec") > reduction("mf8_bas8", "facerec") + 0.05


class TestFigure5Shapes:
    """Instruction-cache reduction ordering (Figure 5)."""

    ICACHE_SUBSET = ("crafty", "eon", "gcc", "perlbmk")

    def test_bcache_tracks_8way(self):
        for benchmark in ("crafty", "gcc"):
            eight = reduction("8way", benchmark, "instr")
            bcache = reduction("mf8_bas8", benchmark, "instr")
            assert bcache > 0.5 * eight

    def test_victim_buffer_far_behind_on_icache(self):
        """Section 6.6: B-Cache beats the buffer by ~38% on I$."""
        bc = average("mf8_bas8", "instr", self.ICACHE_SUBSET)
        victim = average("victim16", "instr", self.ICACHE_SUBSET)
        assert bc > victim + 0.2

    def test_8way_beats_4way_markedly_on_call_heavy_benchmarks(self):
        """Section 4.3.1: crafty/eon/... show >10% 8-way over 4-way."""
        for benchmark in ("crafty", "eon"):
            assert (
                reduction("8way", benchmark, "instr")
                > reduction("4way", benchmark, "instr") + 0.10
            )

    def test_perlbmk_needs_32way(self):
        """Section 4.3.1: only perlbmk gains markedly from 32 ways."""
        perl_gain = reduction("32way", "perlbmk", "instr") - reduction(
            "8way", "perlbmk", "instr"
        )
        crafty_gain = reduction("32way", "crafty", "instr") - reduction(
            "8way", "crafty", "instr"
        )
        assert perl_gain > 0.15
        assert perl_gain > crafty_gain

    def test_quiet_benchmarks_have_tiny_icache_miss_rates(self):
        """Section 4.2: the eleven excluded benchmarks are near-zero."""
        for benchmark in ("gzip", "swim", "mcf"):
            assert miss_rate("dm", benchmark, "instr", TINY) < 0.02


class TestDesignTradeoff:
    """Section 6.3 / Tables 5-6: design A vs B crossover."""

    def test_design_b_wins_at_pd4(self):
        """PD=4: MF4/BAS4 (B) beats MF2/BAS8 (A)."""
        assert average("mf4_bas4") > average("mf2_bas8")

    def test_design_a_wins_at_pd6(self):
        """PD=6: MF8/BAS8 (A) beats MF16/BAS4 (B) — the headline choice."""
        assert average("mf8_bas8") > average("mf16_bas4")

    def test_pd_hit_rate_decreases_with_mf(self):
        rates = []
        for mf in (2, 8):
            stats = run_side(f"mf{mf}_bas8", "crafty", "data", TINY)
            rates.append(stats.pd_hit_rate_during_miss)
        assert rates[1] < rates[0]


class TestFigure12Shapes:
    """Other cache sizes behave like 16 kB (Section 6.5)."""

    @pytest.mark.parametrize("size", [8 * 1024, 32 * 1024])
    def test_bcache_still_beats_victim_buffer(self, size):
        bc = average_reduction(
            [reduction("mf8_bas8", b, "data", size) for b in ("equake", "crafty", "gzip")]
        )
        victim = average_reduction(
            [reduction("victim16", b, "data", size) for b in ("equake", "crafty", "gzip")]
        )
        assert bc > victim

    @pytest.mark.parametrize("size", [8 * 1024, 32 * 1024])
    def test_mf8_bas8_beats_mf16_bas4(self, size):
        """Section 6.5: MF=8/BAS=8 is best at 8, 16 and 32 kB."""
        a = average_reduction(
            [reduction("mf8_bas8", b, "data", size) for b in ("equake", "crafty")]
        )
        b = average_reduction(
            [reduction("mf16_bas4", b, "data", size) for b in ("equake", "crafty")]
        )
        assert a > b
