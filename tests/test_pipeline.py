"""Tests for the event-driven core, including cross-validation against
the analytic timing model."""

import pytest

from repro.caches import make_cache
from repro.caches.direct_mapped import DirectMappedCache
from repro.cpu.pipeline import EventDrivenCore, PipelineConfig
from repro.cpu.timing import OoOProcessorModel
from repro.hierarchy.memory_system import MemoryHierarchy
from repro.trace.access import Access, AccessType
from repro.workloads import SPEC2K


def _hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        l1i=DirectMappedCache(16 * 1024, 32),
        l1d=DirectMappedCache(16 * 1024, 32),
    )


def _loop_trace(n: int, body_blocks: int = 8):
    trace = []
    for i in range(n):
        trace.append(
            Access(0x400000 + (i % body_blocks) * 32, AccessType.IFETCH)
        )
    return trace


class TestConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.issue_width == 4
        assert config.window_size == 16
        assert config.mshrs == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(issue_width=0)
        with pytest.raises(ValueError):
            PipelineConfig(execute_latency=0)


class TestIdealBehaviour:
    def test_perfect_icache_approaches_issue_width(self):
        core = EventDrivenCore(_hierarchy())
        result = core.run(_loop_trace(8000))
        # 8 cold I$ misses, then pure fetch-bandwidth execution.
        assert result.ipc == pytest.approx(4.0, rel=0.15)

    def test_narrow_core_halves_throughput(self):
        wide_ipc = EventDrivenCore(_hierarchy(), PipelineConfig(issue_width=4)).run(
            _loop_trace(16_000)
        ).ipc
        narrow_ipc = EventDrivenCore(_hierarchy(), PipelineConfig(issue_width=2)).run(
            _loop_trace(16_000)
        ).ipc
        assert narrow_ipc == pytest.approx(wide_ipc / 2, rel=0.1)

    def test_empty_trace(self):
        result = EventDrivenCore(_hierarchy()).run([])
        assert result.instructions == 0 and result.ipc == 0.0


class TestStallBehaviour:
    def _miss_trace(self, n: int):
        """Every instruction loads from a thrashing pair: D$ misses."""
        trace = []
        for i in range(n):
            trace.append(Access(0x400000 + (i % 4) * 32, AccessType.IFETCH))
            trace.append(Access((i % 2) * 16 * 1024 + 0x1000, AccessType.READ))
        return trace

    def test_data_misses_cost_cycles(self):
        quiet = EventDrivenCore(_hierarchy()).run(_loop_trace(2000))
        core = EventDrivenCore(_hierarchy())
        missy = core.run(self._miss_trace(2000))
        assert missy.ipc < quiet.ipc / 2
        assert missy.memory_wait_cycles > 0

    def test_ifetch_misses_stall_fetch(self):
        # Instruction stream thrashing two I$ lines at way-size stride.
        trace = [
            Access((i % 2) * 16 * 1024 + 0x400000, AccessType.IFETCH)
            for i in range(2000)
        ]
        core = EventDrivenCore(_hierarchy())
        result = core.run(trace)
        assert result.fetch_stall_cycles > 1000
        assert result.ipc < 0.5

    def test_more_mshrs_help_parallel_misses(self):
        few = EventDrivenCore(_hierarchy(), PipelineConfig(mshrs=1))
        many = EventDrivenCore(_hierarchy(), PipelineConfig(mshrs=8))
        assert many.run(self._miss_trace(1500)).cycles < few.run(
            self._miss_trace(1500)
        ).cycles

    def test_bigger_window_hides_latency(self):
        small = EventDrivenCore(
            _hierarchy(), PipelineConfig(window_size=1)
        ).run(self._miss_trace(1500))
        big = EventDrivenCore(
            _hierarchy(), PipelineConfig(window_size=64)
        ).run(self._miss_trace(1500))
        assert big.cycles < small.cycles


class TestCrossValidation:
    """The event-driven and analytic models must agree on orderings."""

    @pytest.mark.parametrize("benchmark_name", ["equake", "gzip"])
    def test_bcache_beats_baseline_in_both_models(self, benchmark_name):
        trace = list(SPEC2K[benchmark_name].combined_trace(6_000, seed=4))

        def run_event(spec):
            hierarchy = MemoryHierarchy(l1i=make_cache(spec), l1d=make_cache(spec))
            return EventDrivenCore(hierarchy).run(list(trace)).ipc

        def run_analytic(spec):
            hierarchy = MemoryHierarchy(l1i=make_cache(spec), l1d=make_cache(spec))
            return OoOProcessorModel(hierarchy).run(list(trace)).ipc

        event_gain = run_event("mf8_bas8") / run_event("dm")
        analytic_gain = run_analytic("mf8_bas8") / run_analytic("dm")
        assert event_gain >= 1.0
        assert analytic_gain >= 1.0
        # Both models see a gain of the same order.
        assert event_gain == pytest.approx(analytic_gain, abs=0.25)
