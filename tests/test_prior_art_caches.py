"""Unit tests for the Section 7 prior-art organisations: adaptive
group-associative, page colouring, and way-predicting caches."""

import random

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.group_associative import GroupAssociativeCache
from repro.caches.page_coloring import PageColoringCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.way_predicting import (
    PartialAddressMatchingCache,
    PredictiveSequentialCache,
)


def conflict_trace(degree: int, n: int, seed: int = 0, stride: int = 16 * 1024):
    rng = random.Random(seed)
    return [
        rng.randrange(degree) * stride + 0x40 + rng.randrange(4) * 32
        for _ in range(n)
    ]


class TestGroupAssociative:
    def test_relocation_catches_conflicts(self):
        agac = GroupAssociativeCache(16 * 1024, 32)
        dm = DirectMappedCache(16 * 1024, 32)
        for address in conflict_trace(3, 3000):
            agac.access(address)
            dm.access(address)
        assert agac.stats.misses < dm.stats.misses / 2

    def test_relocated_hits_tracked(self):
        agac = GroupAssociativeCache(16 * 1024, 32)
        for address in conflict_trace(3, 2000):
            agac.access(address)
        assert agac.relocated_hits > 0
        assert 0.0 < agac.relocated_hit_fraction < 1.0

    def test_promotion_moves_block_home(self):
        agac = GroupAssociativeCache(512, 32, sht_fraction=0.5)
        a, b = 0x0, 0x200  # same home set
        agac.access(a)
        agac.access(b)  # displaces a into a hole
        agac.access(a)  # relocated hit, promotes a home
        assert agac.contains(a)
        result = agac.access(a)
        assert result.hit  # now a direct hit

    def test_dirty_data_survives_relocation(self):
        agac = GroupAssociativeCache(512, 32)
        agac.access(0x0, is_write=True)
        agac.access(0x200)  # 0x0 relocated, still dirty
        agac.access(0x400)  # 0x200 relocated too
        # Push until 0x0's frame is truly evicted; its writeback must
        # eventually be counted.
        for i in range(3, 40):
            agac.access(i * 0x200)
        assert agac.stats.writebacks >= 1 or agac.contains(0x0)

    def test_probe_sees_relocated_blocks(self):
        agac = GroupAssociativeCache(512, 32)
        agac.access(0x0)
        agac.access(0x200)
        assert agac.contains(0x0) and agac.contains(0x200)

    def test_flush(self):
        agac = GroupAssociativeCache(512, 32)
        agac.access(0x0)
        agac.flush()
        assert not agac.contains(0x0)
        assert agac.relocated_hits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupAssociativeCache(512, 32, sht_fraction=0.0)
        with pytest.raises(ValueError):
            GroupAssociativeCache(512, 32, sht_fraction=1.0)


class TestPageColoring:
    def test_recoloring_reduces_page_conflicts(self):
        """Two pages thrashing the same colour get separated by the OS."""
        colored = PageColoringCache(16 * 1024, 32, threshold=16)
        dm = DirectMappedCache(16 * 1024, 32)
        for address in conflict_trace(2, 4000):
            colored.access(address)
            dm.access(address)
        assert colored.recolored_pages >= 1
        assert colored.stats.misses < dm.stats.misses / 2

    def test_near_2way_shape_on_pairs(self):
        """The paper: page colouring ~ 2-way.  After recolouring, the
        thrashing pair stops missing, but the software fix is never
        *better* than hardware associativity (it paid recolour misses
        first)."""
        colored = PageColoringCache(16 * 1024, 32, threshold=16)
        twoway = SetAssociativeCache(16 * 1024, 32, ways=2)
        trace = conflict_trace(2, 4000, seed=3)
        for address in trace:
            colored.access(address)
            twoway.access(address)
        assert colored.stats.miss_rate < 0.03  # conflicts resolved
        assert colored.stats.misses >= twoway.stats.misses

    def test_blocks_remain_findable_after_recolor(self):
        colored = PageColoringCache(16 * 1024, 32, threshold=8)
        trace = conflict_trace(2, 2000, seed=1)
        for address in trace:
            colored.access(address)
        # Re-access the trailing working set: no aliasing or lost state.
        for address in trace[-50:]:
            result = colored.access(address)
            assert result.set_index < colored.num_sets

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PageColoringCache(16 * 1024, 32, page_size=4000)
        with pytest.raises(ValueError):
            PageColoringCache(10 * 1024, 32, page_size=4096)

    def test_colors(self):
        cache = PageColoringCache(16 * 1024, 32, page_size=4096)
        assert cache.num_colors == 4
        assert cache.color_bits == 2

    def test_flush(self):
        cache = PageColoringCache(16 * 1024, 32, threshold=4)
        for address in conflict_trace(2, 500):
            cache.access(address)
        cache.flush()
        assert cache.recolored_pages == 0
        assert not cache.contains(0x40)


class TestPartialAddressMatching:
    def test_miss_rate_equals_plain_set_associative(self):
        """Way prediction changes latency, never the contents."""
        pam = PartialAddressMatchingCache(16 * 1024, 32, ways=2)
        plain = SetAssociativeCache(16 * 1024, 32, ways=2)
        rng = random.Random(5)
        for _ in range(3000):
            address = rng.randrange(1 << 20)
            assert pam.access(address).hit == plain.access(address).hit

    def test_fast_hits_dominate_with_distinct_partial_tags(self):
        pam = PartialAddressMatchingCache(16 * 1024, 32, ways=2, pad_bits=5)
        # Two conflicting blocks whose low tag bits differ.
        for _ in range(50):
            pam.access(0x0)
            pam.access(0x4000)  # tag differs in bit 0 -> PAD separates
        assert pam.fast_hits > 0
        assert pam.slow_hit_fraction < 0.2

    def test_aliased_partial_tags_cause_slow_hits(self):
        pam = PartialAddressMatchingCache(16 * 1024, 32, ways=2, pad_bits=2)
        # Tags differing only above the PAD bits: both PAD entries match.
        stride = 16 * 1024 << 2
        for _ in range(50):
            pam.access(0x0)
            pam.access(stride)
        assert pam.slow_hits > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PartialAddressMatchingCache(16 * 1024, 32, ways=2, pad_bits=0)

    def test_flush_resets_latency_counters(self):
        pam = PartialAddressMatchingCache(16 * 1024, 32, ways=2)
        pam.access(0x0)
        pam.access(0x0)
        pam.flush()
        assert pam.fast_hits == 0 and pam.slow_hits == 0


class TestPredictiveSequential:
    def test_miss_rate_equals_plain_set_associative(self):
        psa = PredictiveSequentialCache(16 * 1024, 32, ways=2)
        plain = SetAssociativeCache(16 * 1024, 32, ways=2)
        rng = random.Random(6)
        for _ in range(3000):
            address = rng.randrange(1 << 20)
            assert psa.access(address).hit == plain.access(address).hit

    def test_repeated_access_is_fast(self):
        psa = PredictiveSequentialCache(16 * 1024, 32, ways=2)
        psa.access(0x0)
        psa.access(0x0)
        psa.access(0x0)
        assert psa.fast_hits == 2
        assert psa.slow_hits == 0

    def test_alternation_causes_slow_hits(self):
        psa = PredictiveSequentialCache(16 * 1024, 32, ways=2)
        for _ in range(20):
            psa.access(0x0)
            psa.access(0x4000)  # same set, other way: misprediction
        assert psa.slow_hits > 10
        assert psa.extra_probe_count >= psa.slow_hits

    def test_mru_update_after_fill(self):
        psa = PredictiveSequentialCache(512, 32, ways=2)
        psa.access(0x0)
        result = psa.access(0x0)
        assert result.hit and psa.fast_hits == 1

    def test_flush(self):
        psa = PredictiveSequentialCache(512, 32, ways=2)
        psa.access(0x0)
        psa.flush()
        assert psa.fast_hits == 0 and psa.extra_probe_count == 0


class TestFactoryIntegration:
    @pytest.mark.parametrize("spec,cls", [
        ("agac", GroupAssociativeCache),
        ("pagecolor", PageColoringCache),
        ("pam2", PartialAddressMatchingCache),
        ("psa4", PredictiveSequentialCache),
    ])
    def test_factory_specs(self, spec, cls):
        from repro.caches import make_cache

        cache = make_cache(spec)
        assert isinstance(cache, cls)
