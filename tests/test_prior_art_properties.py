"""Property-based tests for the prior-art cache models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.column_associative import ColumnAssociativeCache
from repro.caches.group_associative import GroupAssociativeCache
from repro.caches.page_coloring import PageColoringCache
from repro.caches.skewed_associative import SkewedAssociativeCache
from repro.caches.way_predicting import PredictiveSequentialCache
from repro.caches.write_policy import WritePolicyCache
from repro.caches.direct_mapped import DirectMappedCache

addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 18) - 1), min_size=1, max_size=250
)
writes = st.lists(st.booleans(), min_size=250, max_size=250)


def _no_duplicate_blocks(frames: list[int]) -> bool:
    valid = [b for b in frames if b >= 0]
    return len(valid) == len(set(valid))


class TestGroupAssociativeProperties:
    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_no_block_in_two_frames(self, addrs):
        cache = GroupAssociativeCache(2 * 1024, 32)
        for address in addrs:
            cache.access(address)
        assert _no_duplicate_blocks(cache._blocks)

    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_opd_points_at_real_blocks_or_is_stale_safe(self, addrs):
        cache = GroupAssociativeCache(2 * 1024, 32)
        for address in addrs:
            cache.access(address)
            # Probing immediately after an access must hit.
            assert cache.contains(address)

    @given(addresses)
    @settings(max_examples=30, deadline=None)
    def test_stats_consistent(self, addrs):
        cache = GroupAssociativeCache(2 * 1024, 32)
        for address in addrs:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert cache.direct_hits + cache.relocated_hits == stats.hits


class TestPageColoringProperties:
    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_no_aliasing_after_recolors(self, addrs):
        cache = PageColoringCache(2 * 1024, 32, page_size=512, threshold=4,
                                  cooldown=8)
        for address in addrs:
            cache.access(address)
            assert cache.contains(address)
        assert _no_duplicate_blocks(cache._blocks)

    @given(addresses)
    @settings(max_examples=30, deadline=None)
    def test_index_always_in_range(self, addrs):
        cache = PageColoringCache(2 * 1024, 32, page_size=512, threshold=4)
        for address in addrs:
            result = cache.access(address)
            assert 0 <= result.set_index < cache.num_sets


class TestSkewedProperties:
    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_access_then_probe(self, addrs):
        cache = SkewedAssociativeCache(2 * 1024, 32, ways=2)
        for address in addrs:
            cache.access(address)
            assert cache.contains(address)

    @given(addresses)
    @settings(max_examples=30, deadline=None)
    def test_no_duplicate_blocks_across_ways(self, addrs):
        cache = SkewedAssociativeCache(2 * 1024, 32, ways=2)
        for address in addrs:
            cache.access(address)
        all_blocks = [b for way in cache._blocks for b in way if b >= 0]
        assert len(all_blocks) == len(set(all_blocks))


class TestColumnAssociativeProperties:
    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_access_then_probe(self, addrs):
        cache = ColumnAssociativeCache(2 * 1024, 32)
        for address in addrs:
            cache.access(address)
            assert cache.contains(address)

    @given(addresses)
    @settings(max_examples=30, deadline=None)
    def test_rehash_bits_only_on_occupied_frames(self, addrs):
        cache = ColumnAssociativeCache(2 * 1024, 32)
        for address in addrs:
            cache.access(address)
        for index in range(cache.num_sets):
            if cache._rehash[index]:
                assert cache._blocks[index] >= 0


class TestWayPredictionProperties:
    @given(addresses)
    @settings(max_examples=30, deadline=None)
    def test_latency_counters_partition_hits(self, addrs):
        cache = PredictiveSequentialCache(2 * 1024, 32, ways=2)
        for address in addrs:
            cache.access(address)
        assert cache.fast_hits + cache.slow_hits == cache.stats.hits


class TestWritePolicyProperties:
    @given(addresses, writes)
    @settings(max_examples=30, deadline=None)
    def test_write_through_never_dirty(self, addrs, is_write):
        cache = WritePolicyCache(
            DirectMappedCache(1024, 32), write_through=True
        )
        for address, w in zip(addrs, is_write):
            cache.access(address, w)
        assert cache.inner.stats.writebacks == 0

    @given(addresses, writes)
    @settings(max_examples=30, deadline=None)
    def test_no_allocate_never_fills_on_write_miss(self, addrs, is_write):
        cache = WritePolicyCache(
            DirectMappedCache(1024, 32), write_allocate=False
        )
        resident_reads: set[int] = set()
        for address, w in zip(addrs, is_write):
            before = cache.contains(address)
            cache.access(address, w)
            if w and not before:
                # A write miss must not have allocated.
                assert not cache.contains(address)
