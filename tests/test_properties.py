"""Property-based tests (hypothesis) for the core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.victim import VictimBufferCache
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry
from repro.replacement.lru import LRUPolicy

# Small geometry keeps each hypothesis example fast: 64 sets.
SMALL = BCacheGeometry(2 * 1024, 32, mapping_factor=4, associativity=4)

addresses = st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                     min_size=1, max_size=300)
toggles = st.lists(st.booleans(), min_size=1, max_size=300)


class TestBCacheInvariants:
    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_decoder_uniqueness_always_holds(self, addrs):
        """No two valid PD entries in a row ever hold the same value."""
        cache = BCache(SMALL)
        for address in addrs:
            cache.access(address)
        cache.check_integrity()

    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_access_then_probe_hits(self, addrs):
        """Immediately after accessing A, A is resident."""
        cache = BCache(SMALL)
        for address in addrs:
            cache.access(address)
            assert cache.contains(address)

    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_evicted_block_no_longer_resident(self, addrs):
        cache = BCache(SMALL)
        for address in addrs:
            result = cache.access(address)
            if result.evicted is not None:
                assert not cache.contains(result.evicted)

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_repeat_of_trace_is_all_hits_when_it_fits(self, addrs):
        """A working set that fits — at most BAS blocks per row, all with
        distinct programmable indices — re-runs entirely from cache.
        Blocks sharing both row and PI are excluded: those conflict by
        design (the PD-hit forced-victim scenario), exactly like two
        same-set blocks in a direct-mapped cache."""
        unique_blocks = {a >> 5 for a in addrs}
        per_row: dict[int, set[int]] = {}
        pi_collision = False
        for block in unique_blocks:
            row, pi, _ = SMALL.decompose_block(block)
            pis = per_row.setdefault(row, set())
            if pi in pis:
                pi_collision = True
            pis.add(pi)
        fits = not pi_collision and all(
            len(pis) <= SMALL.num_clusters for pis in per_row.values()
        )
        cache = BCache(SMALL)
        for address in addrs:
            cache.access(address)
        before = cache.stats.misses
        for address in addrs:
            cache.access(address)
        if fits:
            assert cache.stats.misses == before
        else:
            # Conflicting sets can keep missing; compulsory misses are
            # still a lower bound and every miss is accounted.
            assert before >= len(unique_blocks)
            assert cache.stats.misses <= cache.stats.accesses

    @given(addresses, st.sampled_from(["lru", "random", "fifo", "plru"]))
    @settings(max_examples=40, deadline=None)
    def test_all_policies_preserve_integrity(self, addrs, policy):
        cache = BCache(SMALL, policy=policy, seed=1)
        for address in addrs:
            cache.access(address)
        cache.check_integrity()

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_degenerate_bcache_equals_direct_mapped(self, addrs):
        """MF=1 keeps the hit/miss sequence identical to a DM cache."""
        geometry = BCacheGeometry(2 * 1024, 32, mapping_factor=1, associativity=4)
        bcache = BCache(geometry)
        dm = DirectMappedCache(2 * 1024, 32)
        for address in addrs:
            assert bcache.access(address).hit == dm.access(address).hit


class TestConventionalInvariants:
    @given(addresses, toggles)
    @settings(max_examples=40, deadline=None)
    def test_set_associative_never_loses_blocks_silently(self, addrs, writes):
        cache = SetAssociativeCache(1024, 32, ways=4)
        resident: set[int] = set()
        for address, is_write in zip(addrs, writes):
            result = cache.access(address, is_write)
            resident.add(address >> 5)
            if result.evicted is not None:
                resident.discard(result.evicted >> 5)
        for block in resident:
            assert cache.contains(block << 5)

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_fully_associative_is_upper_bound_for_dm(self, addrs):
        """Same capacity, LRU: a fully associative cache never misses
        more than 2x a direct-mapped one on the same trace... in fact we
        assert the weaker, always-true property: hit => was accessed."""
        fa = FullyAssociativeCache(512, 32)
        seen: set[int] = set()
        for address in addrs:
            result = fa.access(address)
            if result.hit:
                assert address >> 5 in seen
            seen.add(address >> 5)

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_victim_buffer_never_worse_than_plain_dm(self, addrs):
        dm = DirectMappedCache(512, 32)
        vb = VictimBufferCache(512, 32, victim_entries=4)
        for address in addrs:
            dm.access(address)
            vb.access(address)
        assert vb.stats.misses <= dm.stats.misses

    @given(addresses, toggles)
    @settings(max_examples=40, deadline=None)
    def test_stats_accounting_consistent(self, addrs, writes):
        cache = SetAssociativeCache(1024, 32, ways=2)
        for address, is_write in zip(addrs, writes):
            cache.access(address, is_write)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.reads + stats.writes == stats.accesses
        assert sum(stats.set_accesses) == stats.accesses
        assert sum(stats.set_hits) == stats.hits
        assert sum(stats.set_misses) == stats.misses
        assert stats.writebacks <= stats.evictions <= stats.misses


class TestLRUProperties:
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_victim_is_never_most_recent(self, touches):
        policy = LRUPolicy(8)
        for way in touches:
            policy.touch(way)
        assert policy.victim() != touches[-1]

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_order_is_permutation(self, touches):
        policy = LRUPolicy(8)
        for way in touches:
            policy.touch(way)
        assert sorted(policy.recency_order()) == list(range(8))

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60),
        st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_victim_among_agrees_with_filtered_order(self, touches, candidates):
        policy = LRUPolicy(8)
        for way in touches:
            policy.touch(way)
        chosen = policy.victim_among(sorted(candidates))
        order = policy.recency_order()
        filtered = [w for w in order if w in candidates]
        assert chosen == filtered[-1]


class TestGeometryProperties:
    @given(
        st.sampled_from([512, 1024, 2048, 4096, 8192, 16384, 32768]),
        st.sampled_from([1, 2, 4, 8, 16]),
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=0, max_value=(1 << 27) - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_decompose_compose_roundtrip(self, size, mf, bas, block):
        if bas > size // 32:
            return
        geometry = BCacheGeometry(size, 32, mapping_factor=mf, associativity=bas)
        row, pi, tag = geometry.decompose_block(block)
        assert geometry.compose_block(row, pi, tag) == block
        assert 0 <= row < geometry.num_rows
        assert 0 <= pi < 2**geometry.pi_bits


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bcache_runs_are_reproducible(self, seed):
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        a = BCache(SMALL, policy="random", seed=3)
        b = BCache(SMALL, policy="random", seed=3)
        for _ in range(200):
            address_a = rng_a.randrange(1 << 20)
            address_b = rng_b.randrange(1 << 20)
            assert a.access(address_a).hit == b.access(address_b).hit
