"""Unit tests for the replacement policies."""

import pytest

from repro.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PolicyError,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
    policy_names,
)


class TestLRU:
    def test_cold_fill_order(self):
        policy = LRUPolicy(4)
        assert policy.victim() == 3  # least recent of initial order

    def test_victim_is_least_recently_touched(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        assert policy.victim() == 0
        policy.touch(0)
        assert policy.victim() == 1

    def test_victim_among_respects_recency(self):
        policy = LRUPolicy(4)
        for way in (3, 2, 1, 0):
            policy.touch(way)
        # Recency (MRU first): 0,1,2,3 -> among {1,2} the LRU is 2.
        assert policy.victim_among([1, 2]) == 2

    def test_invalidate_moves_to_lru_end(self):
        policy = LRUPolicy(3)
        for way in (0, 1, 2):
            policy.touch(way)
        policy.invalidate(1)
        assert policy.victim() == 1

    def test_recency_order_snapshot(self):
        policy = LRUPolicy(3)
        policy.touch(2)
        assert policy.recency_order()[0] == 2

    def test_out_of_range_way(self):
        policy = LRUPolicy(2)
        with pytest.raises(PolicyError):
            policy.touch(2)
        with pytest.raises(PolicyError):
            policy.invalidate(-1)

    def test_victim_among_empty(self):
        with pytest.raises(ValueError):
            LRUPolicy(2).victim_among([])

    def test_lru_stack_property(self):
        """Touching a way never changes the relative order of others."""
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        before = [w for w in policy.recency_order() if w != 2]
        policy.touch(2)
        after = [w for w in policy.recency_order() if w != 2]
        assert before == after


class TestRandom:
    def test_prefers_free_ways(self):
        policy = RandomPolicy(4, seed=0)
        policy.touch(0)
        assert policy.victim() in {1, 2, 3}

    def test_deterministic_given_seed(self):
        a = RandomPolicy(8, seed=42)
        b = RandomPolicy(8, seed=42)
        for way in range(8):
            a.touch(way)
            b.touch(way)
        assert [a.victim_among(list(range(8))) for _ in range(10)] == [
            b.victim_among(list(range(8))) for _ in range(10)
        ]

    def test_victim_among_prefers_free(self):
        policy = RandomPolicy(4, seed=1)
        policy.touch(0)
        policy.touch(1)
        assert policy.victim_among([0, 2]) == 2

    def test_invalidate_returns_to_free_pool(self):
        policy = RandomPolicy(2, seed=0)
        policy.touch(0)
        policy.touch(1)
        policy.invalidate(0)
        assert policy.victim() == 0

    def test_out_of_range(self):
        with pytest.raises(PolicyError):
            RandomPolicy(2).touch(5)


class TestFIFO:
    def test_evicts_in_fill_order(self):
        policy = FIFOPolicy(3)
        for way in (0, 1, 2):
            policy.touch(way)
        assert policy.victim() == 0

    def test_hit_does_not_refresh(self):
        policy = FIFOPolicy(3)
        for way in (0, 1, 2):
            policy.touch(way)
        policy.touch(0)  # hit on resident way
        assert policy.victim() == 0

    def test_prefers_free_ways(self):
        policy = FIFOPolicy(3)
        policy.touch(1)
        assert policy.victim() in (0, 2)

    def test_victim_among(self):
        policy = FIFOPolicy(3)
        for way in (2, 0, 1):
            policy.touch(way)
        assert policy.victim_among([0, 1]) == 0

    def test_invalidate(self):
        policy = FIFOPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.invalidate(1)
        assert policy.victim() == 1


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(PolicyError):
            TreePLRUPolicy(3)

    def test_fills_invalid_ways_first(self):
        policy = TreePLRUPolicy(4)
        policy.touch(0)
        assert policy.victim() == 1

    def test_points_away_from_recent(self):
        policy = TreePLRUPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.touch(0)
        assert policy.victim() == 1

    def test_full_rotation(self):
        policy = TreePLRUPolicy(4)
        for way in range(4):
            policy.touch(way)
        victim = policy.victim()
        assert victim == 0  # oldest path in the tree

    def test_victim_among_prefers_invalid(self):
        policy = TreePLRUPolicy(4)
        policy.touch(0)
        policy.touch(1)
        assert policy.victim_among([1, 3]) == 3

    def test_victim_among_all_valid(self):
        policy = TreePLRUPolicy(4)
        for way in range(4):
            policy.touch(way)
        policy.touch(1)
        assert policy.victim_among([0, 1]) == 0

    def test_invalidate(self):
        policy = TreePLRUPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.invalidate(1)
        assert policy.victim() == 1


class TestFactory:
    def test_names(self):
        assert set(policy_names()) == {"lru", "random", "fifo", "plru"}

    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy),
        ("random", RandomPolicy),
        ("fifo", FIFOPolicy),
        ("plru", TreePLRUPolicy),
    ])
    def test_instantiates(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 2), LRUPolicy)

    def test_unknown_name(self):
        with pytest.raises(PolicyError, match="unknown replacement policy"):
            make_policy("mru", 2)

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0)
