"""Tests for the markdown report generator."""

import pytest

from repro.experiments.common import SMOKE
from repro.experiments.report import generate_report, write_report


def _stub_registry():
    return {
        "tab2": lambda scale: "STORAGE TABLE",
        "fig3": lambda scale: f"SWEEP at {scale.data_n}",
    }


class TestGenerateReport:
    def test_contains_sections_in_order(self):
        text = generate_report(SMOKE, experiments=_stub_registry())
        assert text.index("Table 2") < text.index("Figure 3")
        assert "STORAGE TABLE" in text

    def test_scale_recorded(self):
        text = generate_report(SMOKE, experiments=_stub_registry())
        assert str(SMOKE.data_n) in text

    def test_explicit_ids(self):
        text = generate_report(
            SMOKE, experiments=_stub_registry(), ids=("fig3",)
        )
        assert "SWEEP" in text and "STORAGE" not in text

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            generate_report(SMOKE, experiments=_stub_registry(), ids=("nope",))

    def test_output_is_markdown(self):
        text = generate_report(SMOKE, experiments=_stub_registry())
        assert text.startswith("# B-Cache reproduction report")
        assert "```" in text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(
            tmp_path / "report.md", SMOKE, experiments=_stub_registry()
        )
        assert path.exists()
        assert "STORAGE TABLE" in path.read_text()

    def test_real_registry_fast_subset(self, tmp_path):
        """Circuit tables need no simulation: run them for real."""
        path = write_report(
            tmp_path / "r.md", SMOKE, ids=("tab1", "tab2", "tab3")
        )
        content = path.read_text()
        assert "147456" in content  # Table 2's B-Cache bit count
        assert "slack" in content
