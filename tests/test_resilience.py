"""Tests for the crash-safe sweep engine (retries, journal, resume)."""

from __future__ import annotations

import contextlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from random import Random

import pytest

from repro.engine.faultinject import FaultPlan
from repro.engine.resilience import (
    ResilienceConfig,
    ResultJournal,
    RetryPolicy,
    SweepFailure,
    default_run_root,
    job_key,
)
from repro.engine.runner import SweepJob, execute_job, run_sweep
from repro.engine.trace_store import TraceStore


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces", fsync=False)


def small_sweep(n: int = 2000) -> list[SweepJob]:
    return [
        SweepJob(spec=spec, benchmark=benchmark, n=n)
        for spec in ("dm", "2way")
        for benchmark in ("gzip", "equake")
    ]


FAST = ResilienceConfig(
    retry=RetryPolicy(max_attempts=4, base_delay=0.005, max_delay=0.05),
    job_timeout=30.0,
    fsync=False,
)


class TestRetryPolicy:
    def test_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay(2, Random(7)) == policy.delay(2, Random(7))

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        rng = Random(1)
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(10, rng) == pytest.approx(0.4)  # capped

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        delay = policy.delay(0, Random(3))
        assert 0.1 <= delay <= 0.15


class TestResultJournal:
    def test_round_trip_bit_identical(self, tmp_path, store):
        job = SweepJob(spec="dm", benchmark="gzip", n=1200)
        stats = execute_job(job, store=store)
        journal = ResultJournal(tmp_path / "run", fsync=False)
        journal.open_run("r1", [job])
        journal.record(job, stats)
        journal.close()

        reloaded = ResultJournal(tmp_path / "run")
        assert reloaded.completed[job_key(job)] == stats
        assert reloaded.corrupt_lines == 0
        assert reloaded.header is not None
        assert reloaded.header["run_id"] == "r1"

    def test_torn_tail_skipped_and_healed(self, tmp_path, store):
        jobs = small_sweep(1000)[:2]
        stats = [execute_job(job, store=store) for job in jobs]
        journal = ResultJournal(tmp_path / "run", fsync=False)
        journal.open_run("r1", jobs)
        journal.record(jobs[0], stats[0])
        journal.record(jobs[1], stats[1], torn=True)  # simulated crash
        journal.close()

        reloaded = ResultJournal(tmp_path / "run", fsync=False)
        assert job_key(jobs[0]) in reloaded.completed
        assert job_key(jobs[1]) not in reloaded.completed
        assert reloaded.corrupt_lines == 1
        # Appending after the torn tail heals it: the new record parses.
        reloaded.open_run("r1", jobs)
        reloaded.record(jobs[1], stats[1])
        reloaded.close()
        final = ResultJournal(tmp_path / "run")
        assert final.completed[job_key(jobs[1])] == stats[1]

    def test_corrupt_line_skipped(self, tmp_path, store):
        job = SweepJob(spec="dm", benchmark="gzip", n=1000)
        stats = execute_job(job, store=store)
        journal = ResultJournal(tmp_path / "run", fsync=False)
        journal.open_run("r1", [job])
        journal.record(job, stats)
        journal.close()
        path = tmp_path / "run" / "journal.jsonl"
        lines = path.read_text().splitlines()
        flipped = lines[-1][:9] + ("X" if lines[-1][9] != "X" else "Y") + lines[-1][10:]
        path.write_text("\n".join(lines[:-1] + [flipped]) + "\n")

        reloaded = ResultJournal(tmp_path / "run")
        assert job_key(job) not in reloaded.completed
        assert reloaded.corrupt_lines == 1

    def test_index_written_atomically(self, tmp_path, store):
        job = SweepJob(spec="dm", benchmark="gzip", n=1000)
        journal = ResultJournal(tmp_path / "run", fsync=False)
        journal.open_run("r1", [job])
        journal.record(job, execute_job(job, store=store))
        index = json.loads((tmp_path / "run" / "index.json").read_text())
        assert index["completed"] == 1
        assert index["total_jobs"] == 1
        assert index["run_id"] == "r1"

    def test_default_run_root_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_ROOT", str(tmp_path / "runs"))
        assert default_run_root() == tmp_path / "runs"


class TestResumeSerial:
    def test_run_id_journals_and_resumes(self, tmp_path, store):
        jobs = small_sweep()
        clean = run_sweep(jobs, workers=1, store=store)
        first = run_sweep(
            jobs, workers=1, store=store, run_id="r", run_root=tmp_path,
            resilience=FAST,
        )
        assert first == clean
        resumed = run_sweep(
            jobs, workers=1, store=store, resume="r", run_root=tmp_path,
            resilience=FAST,
        )
        assert resumed == clean

    def test_resume_skips_execution(self, tmp_path, store, monkeypatch):
        jobs = small_sweep()
        expected = run_sweep(
            jobs, workers=1, store=store, run_id="r", run_root=tmp_path,
            resilience=FAST,
        )

        import repro.engine.resilience as resilience

        def _boom(*args, **kwargs):
            raise AssertionError("resume must not re-execute completed jobs")

        monkeypatch.setattr(resilience, "execute_job", _boom)
        resumed = run_sweep(
            jobs, workers=1, store=store, resume="r", run_root=tmp_path,
            resilience=FAST,
        )
        assert resumed == expected

    def test_run_id_resume_conflict_rejected(self, tmp_path, store):
        with pytest.raises(ValueError, match="disagree"):
            run_sweep(
                small_sweep()[:1], workers=1, store=store,
                run_id="a", resume="b", run_root=tmp_path,
            )

    def test_sanitized_run_survives_resume(self, tmp_path, store):
        jobs = small_sweep()[:2]
        plain = run_sweep(jobs, workers=1, store=store)
        checked = run_sweep(
            jobs, workers=1, store=store, sanitize=True,
            run_id="san", run_root=tmp_path, resilience=FAST,
        )
        assert checked == plain
        resumed = run_sweep(
            jobs, workers=1, store=store, sanitize=True,
            resume="san", run_root=tmp_path, resilience=FAST,
        )
        assert resumed == plain


class TestFaultRecovery:
    def test_flaky_job_retries_serially(self, tmp_path, store):
        jobs = small_sweep()
        clean = run_sweep(jobs, workers=1, store=store)
        plan = FaultPlan.parse("flaky@0,flaky@2")
        got = run_sweep(
            jobs, workers=1, store=store, resilience=FAST, fault_plan=plan,
        )
        assert got == clean

    def test_crash_and_hang_recovered_by_supervisor(self, tmp_path, store):
        jobs = small_sweep()
        clean = run_sweep(jobs, workers=1, store=store)
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=4, base_delay=0.005),
            job_timeout=8.0,
            fsync=False,
        )
        plan = FaultPlan.parse("crash@0,hang@1")
        got = run_sweep(
            jobs, workers=2, store=store, resilience=config, fault_plan=plan,
        )
        assert got == clean

    def test_corrupt_blob_quarantined_and_recovered(self, tmp_path, store):
        jobs = small_sweep()
        clean = run_sweep(jobs, workers=1, store=store)
        plan = FaultPlan.parse("corrupt_blob@1")
        got = run_sweep(
            jobs, workers=1, store=store, resilience=FAST, fault_plan=plan,
        )
        assert got == clean
        assert (store.quarantine_root).is_dir()

    def test_torn_journal_rerun_on_resume(self, tmp_path, store):
        jobs = small_sweep()
        clean = run_sweep(jobs, workers=1, store=store)
        plan = FaultPlan.parse("torn_journal@2")
        got = run_sweep(
            jobs, workers=1, store=store, run_id="torn", run_root=tmp_path,
            resilience=FAST, fault_plan=plan,
        )
        assert got == clean
        journal = ResultJournal(tmp_path / "torn")
        assert len(journal.completed) == len(jobs) - 1
        assert journal.corrupt_lines == 1
        resumed = run_sweep(
            jobs, workers=1, store=store, resume="torn", run_root=tmp_path,
            resilience=FAST,
        )
        assert resumed == clean
        assert len(ResultJournal(tmp_path / "torn").completed) == len(jobs)

    def test_retry_budget_exhaustion_raises(self, store):
        jobs = small_sweep()[:1]
        plan = FaultPlan(
            # Fail every attempt the budget allows.
            [
                spec
                for attempt in range(4)
                for spec in FaultPlan.parse(f"flaky@0:{attempt}").specs
            ]
        )
        with pytest.raises(SweepFailure, match="failed after"):
            run_sweep(jobs, workers=1, store=store, resilience=FAST, fault_plan=plan)

    def test_pool_degrades_to_serial_after_failures(self, tmp_path, store, caplog):
        jobs = small_sweep()
        clean = run_sweep(jobs, workers=1, store=store)
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=5, base_delay=0.005),
            job_timeout=30.0,
            max_pool_failures=2,
            fsync=False,
        )
        plan = FaultPlan.parse("crash@0,crash@1")
        with caplog.at_level("WARNING", logger="repro.engine.resilience"):
            got = run_sweep(
                jobs, workers=2, store=store, resilience=config, fault_plan=plan,
            )
        assert got == clean
        assert any("serial" in record.message for record in caplog.records)


class TestKillResume:
    """SIGKILL a journaled sweep mid-run; resume must be bit-identical."""

    def test_sigkill_mid_run_resumes_bit_identically(self, tmp_path, store):
        jobs = small_sweep(3000)
        run_root = tmp_path / "runs"
        # The child hangs forever on job 0 (huge timeout, no retry help),
        # so it deterministically finishes every other job, journals
        # them, and then blocks — a guaranteed mid-run SIGKILL window.
        child_code = """
import sys
from repro.engine.faultinject import FaultPlan
from repro.engine.resilience import ResilienceConfig
from repro.engine.runner import SweepJob, run_sweep
from repro.engine.trace_store import TraceStore, set_default_store

store_root, run_root = sys.argv[1], sys.argv[2]
set_default_store(TraceStore(store_root, fsync=False))
jobs = [
    SweepJob(spec=spec, benchmark=benchmark, n=3000)
    for spec in ("dm", "2way")
    for benchmark in ("gzip", "equake")
]
run_sweep(
    jobs,
    workers=2,
    run_id="killed",
    run_root=run_root,
    resilience=ResilienceConfig(job_timeout=3600.0),
    fault_plan=FaultPlan.parse("hang@0"),
)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", child_code, str(store.root), str(run_root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,  # killpg must reach the hung worker too
        )
        journal_path = run_root / "killed" / "journal.jsonl"
        try:
            deadline = time.monotonic() + 60.0
            # Wait for header + every job except the hung one, then kill.
            while time.monotonic() < deadline:
                if (
                    journal_path.is_file()
                    and journal_path.read_text().count("\n") >= len(jobs)
                ):
                    break
                assert proc.poll() is None, "sweep exited before the kill"
                time.sleep(0.02)
            else:
                pytest.fail("journal never reached the pre-kill state")
        finally:
            with contextlib.suppress(ProcessLookupError):
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        journal = ResultJournal(run_root / "killed")
        assert len(journal.completed) == len(jobs) - 1  # killed mid-run

        clean = run_sweep(jobs, workers=1, store=store)
        resumed = run_sweep(
            jobs, workers=1, store=store, resume="killed", run_root=run_root,
            resilience=FAST,
        )
        assert resumed == clean
        assert len(ResultJournal(run_root / "killed").completed) == len(jobs)


class TestFingerprintWarning:
    def test_resuming_different_sweep_warns(self, tmp_path, store, caplog):
        jobs = small_sweep()[:2]
        run_sweep(
            jobs, workers=1, store=store, run_id="fp", run_root=tmp_path,
            resilience=FAST,
        )
        other = small_sweep()[1:3]
        with caplog.at_level("WARNING", logger="repro.engine.resilience"):
            got = run_sweep(
                other, workers=1, store=store, resume="fp", run_root=tmp_path,
                resilience=FAST,
            )
        assert any("fingerprint" in r.message for r in caplog.records)
        assert got == run_sweep(other, workers=1, store=store)
