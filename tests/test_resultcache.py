"""The content-addressed result cache and its admission front door.

Three contracts under test:

* **Canonical keys** — ``canonical_job_key`` matches the resilience
  journal's ``job_key`` byte for byte for a :class:`SweepJob`, and the
  three copies of the key-field set (resultcache, ``SweepJob`` itself,
  the BCL018 linter) can never drift apart silently.
* **Two-tier store** — memory LRU in front of a CRC-framed disk tier:
  promotion, eviction, corruption quarantine, fingerprint invalidation.
* **Admission** — deterministic token buckets under an injected clock,
  and fair queueing that makes a flooding client pay for its own flood.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.analysis.lint import RESULT_CACHE_KEY_FIELDS
from repro.engine.resilience import job_key
from repro.engine.runner import SweepJob
from repro.serve.admission import (
    AdmissionController,
    AdmissionOverload,
    RateLimited,
    TokenBucket,
)
from repro.serve.resultcache import (
    HASHED_JOB_FIELDS,
    CacheKeyError,
    ResultCache,
    Singleflight,
    canonical_job_key,
    job_hash,
)

JOB = SweepJob(spec="mf8_bas8", benchmark="gcc", n=3000, with_kinds=True)
SNAP = {"accesses": 3000, "misses": 412, "hits": 2588}


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
class TestCanonicalKey:
    def test_matches_resilience_job_key_for_sweepjob(self):
        # Journal keys and cache keys must agree byte for byte, or a
        # journal replay and a cache probe could disagree about whether
        # two jobs are "the same job".
        assert canonical_job_key(JOB) == job_key(JOB)

    def test_mapping_field_order_is_irrelevant(self):
        a = {"spec": "dm", "benchmark": "gcc", "n": 1000}
        b = {"n": 1000, "spec": "dm", "benchmark": "gcc"}
        assert canonical_job_key(a) == canonical_job_key(b)

    def test_integral_float_normalises_to_int(self):
        # JSON payloads routinely arrive with n=20000.0; that is the
        # same job as n=20000 and must hash identically.
        exact = {"spec": "dm", "benchmark": "gcc", "n": 20000}
        floaty = {"spec": "dm", "benchmark": "gcc", "n": 20000.0}
        assert canonical_job_key(exact) == canonical_job_key(floaty)

    def test_fractional_float_is_rejected(self):
        with pytest.raises(CacheKeyError, match="non-integral float"):
            canonical_job_key({"spec": "dm", "benchmark": "gcc", "n": 0.5})

    def test_unknown_field_is_rejected(self):
        with pytest.raises(CacheKeyError, match="debug_level"):
            canonical_job_key({"spec": "dm", "debug_level": 3})

    def test_hash_depends_on_fingerprint(self):
        assert job_hash(JOB, "aaaa") != job_hash(JOB, "bbbb")
        assert len(job_hash(JOB)) == 32  # 128 bits of hex

    def test_key_field_sets_agree_everywhere(self):
        # Three copies of the key discipline exist on purpose (the
        # linter must stay importable without serve, the dataclass is
        # the ground truth).  This test is the drift alarm.
        sweep_fields = {f.name for f in dataclasses.fields(SweepJob)}
        assert HASHED_JOB_FIELDS == sweep_fields
        assert RESULT_CACHE_KEY_FIELDS == HASHED_JOB_FIELDS


# ----------------------------------------------------------------------
# Two-tier store
# ----------------------------------------------------------------------
class TestResultCache:
    def _cache(self, tmp_path, **kw) -> ResultCache:
        kw.setdefault("fingerprint", "testfp0000000000")
        kw.setdefault("fsync", False)
        return ResultCache(tmp_path / "rc", **kw)

    def test_roundtrip_memory_hit(self, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.get(JOB) is None
        cache.put(JOB, SNAP)
        assert cache.get(JOB) == SNAP
        snap = cache.snapshot()
        assert snap["hits_memory"] == 1
        assert snap["misses"] == 1
        assert snap["stores"] == 1

    def test_disk_hit_survives_process_restart(self, tmp_path):
        self._cache(tmp_path).put(JOB, SNAP)
        fresh = self._cache(tmp_path)  # empty memory tier
        assert fresh.get(JOB) == SNAP
        assert fresh.snapshot()["hits_disk"] == 1
        # The disk hit was promoted: the next probe is a memory hit.
        assert fresh.lookup_memory(fresh.key(JOB)) == SNAP

    def test_lru_evicts_oldest_entry(self, tmp_path):
        cache = self._cache(tmp_path, capacity=2)
        jobs = [SweepJob(spec="dm", benchmark="gcc", n=1000 + i)
                for i in range(3)]
        for job in jobs:
            cache.put(job, {"n": job.n})
        snap = cache.snapshot()
        assert snap["entries_memory"] == 2
        assert snap["evictions"] == 1
        assert cache.lookup_memory(cache.key(jobs[0])) is None
        # ... but the evicted entry is still on disk.
        assert cache.get(jobs[0]) == {"n": 1000}

    def test_corrupt_entry_is_quarantined_not_served(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put(JOB, SNAP)
        path = cache._entry_path(cache.key(JOB))
        path.write_text(path.read_text("utf-8")[:-10] + "corrupted!\n")
        fresh = self._cache(tmp_path)
        assert fresh.get(JOB) is None  # recompute, never trust bit rot
        assert fresh.snapshot()["quarantined"] == 1
        assert not path.exists()
        assert (fresh.quarantine_root / path.name).exists()

    def test_prune_stale_removes_other_fingerprints_only(self, tmp_path):
        old = self._cache(tmp_path, fingerprint="oldfp00000000000")
        old.put(JOB, SNAP)
        new = self._cache(tmp_path, fingerprint="newfp00000000000")
        new.put(JOB, SNAP)
        assert new.prune_stale() == 1
        assert not old.dir.exists()
        assert new.get(JOB) == SNAP  # own fingerprint untouched

    def test_key_folds_fingerprint(self, tmp_path):
        a = self._cache(tmp_path, fingerprint="aaaa000000000000")
        b = self._cache(tmp_path, fingerprint="bbbb000000000000")
        assert a.key(JOB) != b.key(JOB)


# ----------------------------------------------------------------------
# Singleflight
# ----------------------------------------------------------------------
class TestSingleflight:
    def test_concurrent_identical_calls_execute_once(self):
        async def scenario():
            flight = Singleflight()
            executions = 0
            gate = asyncio.Event()

            async def supplier():
                nonlocal executions
                executions += 1
                await gate.wait()
                return SNAP

            tasks = [
                asyncio.ensure_future(flight.run("k", supplier))
                for _ in range(5)
            ]
            await asyncio.sleep(0)  # let every caller reach the flight
            assert flight.inflight() == 1
            gate.set()
            results = await asyncio.gather(*tasks)
            return flight, executions, results

        flight, executions, results = asyncio.run(scenario())
        assert executions == 1
        assert [r for r, _ in results] == [SNAP] * 5
        assert sorted(shared for _, shared in results) == [
            False, True, True, True, True,
        ]
        assert flight.leaders == 1
        assert flight.waits == 4
        assert flight.inflight() == 0

    def test_leader_failure_propagates_to_waiters(self):
        async def scenario():
            flight = Singleflight()
            gate = asyncio.Event()

            async def supplier():
                await gate.wait()
                raise RuntimeError("shard died")

            tasks = [
                asyncio.ensure_future(flight.run("k", supplier))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            gate.set()
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_cancelled_leader_does_not_poison_waiters(self):
        # The execution is owned by the flight, not the leader's
        # request coroutine: tearing down the leader's connection must
        # not fail the N unrelated callers sharing the flight.
        async def scenario():
            flight = Singleflight()
            gate = asyncio.Event()

            async def supplier():
                await gate.wait()
                return SNAP

            leader = asyncio.ensure_future(flight.run("k", supplier))
            await asyncio.sleep(0)
            waiters = [
                asyncio.ensure_future(flight.run("k", supplier))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            leader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leader
            gate.set()
            results = await asyncio.gather(*waiters)
            return flight, results

        flight, results = asyncio.run(scenario())
        assert [r for r, _ in results] == [SNAP] * 3
        assert all(shared for _, shared in results)
        assert flight.inflight() == 0

    def test_last_caller_cancellation_cancels_the_execution(self):
        # No interested caller left -> the work is not orphaned.
        async def scenario():
            flight = Singleflight()
            started = asyncio.Event()
            cancelled = asyncio.Event()

            async def supplier():
                started.set()
                try:
                    await asyncio.sleep(60)
                except asyncio.CancelledError:
                    cancelled.set()
                    raise

            leader = asyncio.ensure_future(flight.run("k", supplier))
            await started.wait()
            leader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leader
            await asyncio.wait_for(cancelled.wait(), 1.0)
            return flight

        flight = asyncio.run(scenario())
        assert flight.inflight() == 0

    def test_sequential_calls_both_lead(self):
        async def scenario():
            flight = Singleflight()

            async def supplier():
                return 1

            await flight.run("k", supplier)
            await flight.run("k", supplier)
            return flight

        flight = asyncio.run(scenario())
        assert flight.leaders == 2
        assert flight.waits == 0


# ----------------------------------------------------------------------
# Token bucket (pure, deterministic)
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_first_sight_grants_full_burst(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        assert bucket.try_acquire(4.0, now=100.0) == 0.0
        assert bucket.try_acquire(1.0, now=100.0) == pytest.approx(0.5)

    def test_refill_is_linear_and_capped(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        bucket.try_acquire(4.0, now=0.0)  # drain
        assert bucket.try_acquire(1.0, now=0.5) == 0.0  # 1 token accrued
        # A long sleep cannot bank more than the burst ceiling.
        assert bucket.try_acquire(5.0, now=1000.0) == pytest.approx(0.5)

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(rate=4.0, burst=4.0)
        bucket.try_acquire(4.0, now=0.0)
        # 3 tokens short at 4/s -> 0.75 s.
        assert bucket.try_acquire(3.0, now=0.0) == pytest.approx(0.75)


# ----------------------------------------------------------------------
# Admission controller
# ----------------------------------------------------------------------
class _Clock:
    """Injectable monotonic clock for deterministic admission tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestAdmissionController:
    def test_rate_limit_rejects_with_retry_after(self):
        async def scenario():
            clock = _Clock()
            ctl = AdmissionController(
                100, rate=2.0, burst=2.0, clock=clock
            )
            await ctl.acquire("alice", 2)  # burst spent
            with pytest.raises(RateLimited) as exc:
                await ctl.acquire("alice", 2)
            assert exc.value.retry_after == pytest.approx(1.0)
            # Another client has its own bucket.
            await ctl.acquire("bob", 2)
            # Time heals alice.
            clock.now = 1.0
            await ctl.acquire("alice", 2)
            return ctl

        ctl = asyncio.run(scenario())
        assert ctl.rate_limited == 1
        assert ctl.inflight == 6

    def test_budget_exhaustion_sheds_without_queue(self):
        async def scenario():
            ctl = AdmissionController(2, queue_depth=0)
            await ctl.acquire("a", 2)
            with pytest.raises(AdmissionOverload, match="budget"):
                await ctl.acquire("b", 1)
            ctl.release(2)
            await ctl.acquire("b", 1)  # freed budget admits again
            return ctl

        ctl = asyncio.run(scenario())
        assert ctl.inflight == 1

    def test_fair_queue_round_robins_across_clients(self):
        # One flooding client queues 4 requests; a polite client queues
        # 1.  Round-robin granting must serve the polite client on the
        # first freed slot, not after the entire flood.
        async def scenario():
            ctl = AdmissionController(1, queue_depth=8, queue_timeout=30.0)
            await ctl.acquire("flood", 1)  # budget now full
            order: list[str] = []

            async def wait_then_record(client: str) -> None:
                await ctl.acquire(client, 1)
                order.append(client)
                ctl.release(1)

            floods = [
                asyncio.ensure_future(wait_then_record("flood"))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # flood queues first
            polite = asyncio.ensure_future(wait_then_record("polite"))
            await asyncio.sleep(0)
            assert ctl.waiting() == 5
            ctl.release(1)  # free the slot; grants cascade via release
            await asyncio.gather(polite, *floods)
            return ctl, order

        ctl, order = asyncio.run(scenario())
        # The polite client was not last despite arriving last.
        assert order.index("polite") < len(order) - 1
        assert ctl.queued == 5
        assert ctl.waiting() == 0

    def test_queue_timeout_sheds(self):
        async def scenario():
            ctl = AdmissionController(1, queue_depth=4, queue_timeout=0.05)
            await ctl.acquire("a", 1)
            with pytest.raises(AdmissionOverload, match="no capacity"):
                await ctl.acquire("b", 1)
            return ctl

        ctl = asyncio.run(scenario())
        assert ctl.shed_timeout == 1
        assert ctl.waiting() == 0  # timed-out waiter fully discarded

    def test_bucket_table_is_lru_bounded(self):
        # Client identity is caller-supplied and unauthenticated, so
        # an identity-rotating caller must not grow the bucket table
        # without bound: least-recently-seen buckets are evicted.
        async def scenario():
            clock = _Clock()
            ctl = AdmissionController(
                1000, rate=1.0, burst=5.0, max_clients=3, clock=clock
            )
            for name in ("a", "b", "c"):
                await ctl.acquire(name, 1)
            await ctl.acquire("a", 1)  # refresh a: b becomes the LRU
            await ctl.acquire("d", 1)  # over the cap: b is evicted
            return ctl

        ctl = asyncio.run(scenario())
        assert set(ctl._buckets) == {"c", "a", "d"}
        assert ctl.buckets_evicted == 1
        assert ctl.snapshot()["clients_tracked"] == 3
        assert ctl.snapshot()["max_clients"] == 3

    def test_queue_depth_bound_sheds(self):
        async def scenario():
            ctl = AdmissionController(1, queue_depth=1, queue_timeout=5.0)
            await ctl.acquire("a", 1)
            queued = asyncio.ensure_future(ctl.acquire("b", 1))
            await asyncio.sleep(0)
            with pytest.raises(AdmissionOverload, match="queue is full"):
                await ctl.acquire("b", 1)
            ctl.release(1)
            await queued
            return ctl

        ctl = asyncio.run(scenario())
        assert ctl.shed_queue_full == 1
