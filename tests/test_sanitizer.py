"""Runtime sanitizer: transparent on correct caches, loud on corrupted
ones, and bit-identical to an unwrapped run (acceptance criterion)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.reference import ReferenceSetAssociativeLRU, reference_for
from repro.analysis.sanitizer import (
    SanitizedCache,
    SanitizerError,
    check_bcache_geometry,
    global_sanitizer_installed,
    install_global_sanitizer,
    uninstall_global_sanitizer,
)
from repro.caches.base import AccessResult
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.victim import VictimBufferCache
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry
from repro.workloads.spec2k import get_profile


def random_stream(n: int, span: int = 1 << 18, seed: int = 7) -> list[tuple[int, bool]]:
    rng = random.Random(seed)
    return [(rng.randrange(span), rng.random() < 0.3) for _ in range(n)]


# ----------------------------------------------------------------------
# Transparency: wrapping changes nothing.
# ----------------------------------------------------------------------
class TestTransparency:
    def test_bcache_synthetic_workload_bit_identical(self):
        """Acceptance: a sanitizer-wrapped B-Cache over a synthetic
        workload reports zero violations and bit-identical miss rates."""
        geometry = BCacheGeometry(16 * 1024, 32, mapping_factor=8, associativity=8)
        trace = list(get_profile("equake").data_trace(20_000, seed=2006))
        plain = BCache(geometry, policy="lru", seed=3)
        wrapped = SanitizedCache(
            BCache(geometry, policy="lru", seed=3), check_interval=64
        )
        plain_stats = plain.run(trace)
        wrapped_stats = wrapped.run(trace)
        summary = wrapped.finalize()  # zero violations or this raises
        assert summary["accesses_checked"] == len(trace)
        assert summary["structural_checks"] > 0
        assert wrapped_stats.as_dict() == plain_stats.as_dict()
        assert wrapped_stats.miss_rate == plain_stats.miss_rate

    @pytest.mark.parametrize(
        "make",
        [
            lambda: DirectMappedCache(2048, 32),
            lambda: SetAssociativeCache(2048, 32, ways=4, seed=9),
            lambda: FullyAssociativeCache(1024, 32, seed=9),
        ],
        ids=["dm", "4way", "fa"],
    )
    def test_conventional_caches_run_clean(self, make):
        plain, wrapped = make(), SanitizedCache(make(), check_interval=16)
        for address, is_write in random_stream(8000):
            plain.access(address, is_write)
            wrapped.access(address, is_write)
        wrapped.finalize()
        assert wrapped.stats.as_dict() == plain.stats.as_dict()

    def test_wrapper_delegates_cache_observables(self, headline_geometry):
        wrapped = SanitizedCache(BCache(headline_geometry))
        wrapped.access(0x1234)
        assert wrapped.pd_hit_rate_during_miss == 0.0
        assert wrapped.contains(0x1234)
        assert wrapped.name.startswith("BCache")
        assert wrapped.miss_rate == 1.0

    def test_flush_resets_shadow_and_stats(self):
        wrapped = SanitizedCache(DirectMappedCache(1024, 32), check_interval=1)
        for address, is_write in random_stream(500):
            wrapped.access(address, is_write)
        wrapped.flush()
        assert wrapped.stats.accesses == 0
        for address, is_write in random_stream(500, seed=11):
            wrapped.access(address, is_write)
        wrapped.finalize()


# ----------------------------------------------------------------------
# Detection: deliberately broken models must trip.
# ----------------------------------------------------------------------
class PhantomHitCache(DirectMappedCache):
    """Claims a hit for every reference."""

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        return AccessResult(hit=True, set_index=block & self._index_mask)


class SilentEvictionCache(DirectMappedCache):
    """Overwrites resident blocks without reporting the eviction."""

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        index = block & self._index_mask
        tag = block >> self.index_bits
        if self._tags[index] == tag:
            return AccessResult(hit=True, set_index=index)
        self._tags[index] = tag
        self._dirty[index] = is_write
        return AccessResult(hit=False, set_index=index)


class AlwaysDirtyEvictionCache(DirectMappedCache):
    """Reports every eviction as dirty regardless of write history."""

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        result = super()._access_block(block, is_write)
        if result.evicted is None:
            return result
        return AccessResult(
            hit=result.hit,
            set_index=result.set_index,
            evicted=result.evicted,
            evicted_dirty=True,
        )


class MiscountingCache(DirectMappedCache):
    """Inflates the miss counter behind the base class's back."""

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        result = super()._access_block(block, is_write)
        self.stats.misses += 1
        return result


class TestDetection:
    LINE = 32

    def set_conflict_addresses(self, cache: DirectMappedCache) -> list[int]:
        """Addresses that all land in set 0 of a direct-mapped cache."""
        stride = cache.num_sets * self.LINE
        return [i * stride for i in range(4)]

    def test_phantom_hit_detected(self):
        wrapped = SanitizedCache(PhantomHitCache(1024, self.LINE))
        with pytest.raises(SanitizerError, match="never filled"):
            wrapped.access(0x40)

    def test_silent_eviction_detected(self):
        cache = SilentEvictionCache(1024, self.LINE)
        wrapped = SanitizedCache(cache, check_interval=10_000)
        a, b, *_ = self.set_conflict_addresses(cache)
        wrapped.access(a)
        wrapped.access(b)  # overwrites a without reporting it
        with pytest.raises(SanitizerError, match="still-resident"):
            wrapped.access(a)

    def test_wrong_writeback_flag_detected(self):
        cache = AlwaysDirtyEvictionCache(1024, self.LINE)
        wrapped = SanitizedCache(cache, check_interval=10_000)
        a, b, *_ = self.set_conflict_addresses(cache)
        wrapped.access(a, is_write=False)  # clean resident
        with pytest.raises(SanitizerError, match="writeback flag"):
            wrapped.access(b)

    def test_stats_miscounting_detected(self):
        wrapped = SanitizedCache(MiscountingCache(1024, self.LINE), check_interval=1)
        with pytest.raises(SanitizerError, match="stats.misses"):
            wrapped.access(0x40)

    def test_duplicate_set_residents_detected(self):
        cache = SetAssociativeCache(1024, 32, ways=2)
        wrapped = SanitizedCache(cache, check_interval=1)
        for address, is_write in random_stream(200):
            wrapped.access(address, is_write)
        victim_set = next(
            i for i, tags in enumerate(cache._tags) if min(tags) >= 0
        )
        cache._tags[victim_set][1] = cache._tags[victim_set][0]
        with pytest.raises(SanitizerError, match="duplicate"):
            wrapped.checker.check_structure()

    def test_dirty_on_invalid_line_detected(self):
        cache = DirectMappedCache(1024, 32)
        wrapped = SanitizedCache(cache, check_interval=1)
        wrapped.access(0x40)
        empty_set = cache._tags.index(-1)
        cache._dirty[empty_set] = True
        with pytest.raises(SanitizerError, match="dirty bit"):
            wrapped.checker.check_structure()

    def test_duplicate_pd_entry_detected(self, headline_geometry):
        cache = BCache(headline_geometry, seed=5)
        wrapped = SanitizedCache(cache, check_interval=1)
        for address, is_write in random_stream(3000):
            wrapped.access(address, is_write)
        row = next(
            r
            for r in range(headline_geometry.num_rows)
            if len(cache.decoder._lookup[r]) >= 2
        )
        values = cache.decoder._values[row]
        clusters = [c for c, v in enumerate(values) if v >= 0][:2]
        values[clusters[1]] = values[clusters[0]]  # break CAM uniqueness
        with pytest.raises(SanitizerError, match="decoder integrity"):
            wrapped.checker.check_structure()


# ----------------------------------------------------------------------
# Geometry equations (Section 3.1).
# ----------------------------------------------------------------------
class TestGeometryInvariants:
    def test_valid_design_points_pass(self):
        for mf in (1, 2, 8):
            for bas in (1, 2, 8):
                check_bcache_geometry(
                    BCacheGeometry(16 * 1024, 32, mapping_factor=mf, associativity=bas)
                )

    def test_corrupted_derivation_fails(self, headline_geometry):
        object.__setattr__(headline_geometry, "pi_bits", 5)
        with pytest.raises(SanitizerError):
            check_bcache_geometry(headline_geometry)

    def test_wrapping_validates_geometry(self, headline_geometry):
        object.__setattr__(headline_geometry, "npi_bits", 4)
        with pytest.raises(SanitizerError):
            SanitizedCache(BCache(headline_geometry))


# ----------------------------------------------------------------------
# Differential mode.
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: DirectMappedCache(1024, 32),
            lambda: SetAssociativeCache(1024, 32, ways=4),
            lambda: FullyAssociativeCache(512, 32),
        ],
        ids=["dm", "4way", "fa"],
    )
    def test_agrees_with_reference(self, make):
        wrapped = SanitizedCache(make(), differential=True, check_interval=64)
        for address, is_write in random_stream(6000, span=1 << 15):
            wrapped.access(address, is_write)
        wrapped.finalize()

    def test_unsupported_cache_is_rejected(self):
        with pytest.raises(ValueError, match="no reference model"):
            SanitizedCache(VictimBufferCache(1024, 32), differential=True)
        assert reference_for(VictimBufferCache(1024, 32)) is None

    def test_non_lru_policy_divergence_detected(self):
        # A FIFO cache disguised as LRU: on [a, b, touch a, c] FIFO
        # evicts a while LRU evicts b, so the next access to a
        # diverges.  The shadow checks all pass (the cache is
        # self-consistent) — only the differential catches it.
        cache = SetAssociativeCache(128, 32, ways=2, policy="fifo")
        cache.policy_name = "lru"  # fool reference_for on purpose
        wrapped = SanitizedCache(cache, differential=True, check_interval=10_000)
        stride = cache.num_sets * 32
        a, b, c = 0, stride, 2 * stride
        wrapped.access(a)
        wrapped.access(b)
        wrapped.access(a)  # LRU now prefers evicting b; FIFO still evicts a
        wrapped.access(c)
        with pytest.raises(SanitizerError, match="differential divergence"):
            wrapped.access(a)

    def test_reference_model_is_plain_lru(self):
        reference = ReferenceSetAssociativeLRU(2, 2, 5)
        line = 32
        assert reference.access(0 * line) is False
        assert reference.access(2 * line) is False  # same set, second way
        assert reference.access(0 * line) is True
        assert reference.access(4 * line) is False  # evicts block 2
        assert reference.access(2 * line) is False


# ----------------------------------------------------------------------
# Global (class-level) hook.
# ----------------------------------------------------------------------
class TestGlobalHook:
    @pytest.fixture()
    def fast_global_hook(self):
        was_installed = global_sanitizer_installed()
        uninstall_global_sanitizer()
        install_global_sanitizer(check_interval=1)
        yield
        uninstall_global_sanitizer()
        if was_installed:
            install_global_sanitizer(check_interval=256)

    def test_structural_corruption_detected(self, fast_global_hook):
        cache = SetAssociativeCache(512, 32, ways=2)
        for address, is_write in random_stream(300):
            cache.access(address, is_write)
        target = next(i for i, tags in enumerate(cache._tags) if min(tags) >= 0)
        cache._tags[target][1] = cache._tags[target][0]
        # Probe a different set so the access cannot repair the
        # corruption before the periodic structural scan sees it.
        with pytest.raises(SanitizerError, match="duplicate"):
            cache.access(((target + 1) % cache.num_sets) * 32)

    def test_lenient_mode_survives_fault_injection(self, fast_global_hook):
        # Out-of-band mutation must resynchronise, not fail: tests
        # legitimately poke cache internals (e.g. FA invalidation).
        cache = FullyAssociativeCache(512, 32)
        for address, is_write in random_stream(200):
            cache.access(address, is_write)
        cache.invalidate_block_address(0)
        for address, is_write in random_stream(200, seed=13):
            cache.access(address, is_write)

    def test_install_is_idempotent_and_reversible(self, fast_global_hook):
        from repro.caches.base import Cache

        patched = Cache.access
        install_global_sanitizer()  # second install: no-op
        assert Cache.access is patched
        uninstall_global_sanitizer()
        assert Cache.access is not patched
        uninstall_global_sanitizer()  # double uninstall: no-op
        install_global_sanitizer(check_interval=1)  # restore for fixture


def test_sanitize_fixture_wraps_strictly(sanitize):
    wrapped = sanitize(DirectMappedCache(1024, 32))
    for address, is_write in random_stream(1000):
        wrapped.access(address, is_write)
    assert wrapped.finalize()["accesses_checked"] == 1000
