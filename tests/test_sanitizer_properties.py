"""Property tests for the sanitizer.

Two directions, per the tooling's contract:

* **Soundness** — over random geometries and random access streams, a
  known-good cache never trips a single invariant, and the wrapped run
  is bit-identical to the unwrapped one.
* **Sensitivity** — a deliberately corrupted cache always trips.

Settings tiers follow the shared profile convention (see
``conftest.py``): stateful stream-replay tests run fewer, longer
examples than the plain structural ones.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import SanitizedCache, SanitizerError
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.core.bcache import BCache
from repro.core.config import BCacheGeometry

# Tiered settings (SNIPPETS convention): stream replays are the
# expensive stateful tier, structural checks the standard tier.
STREAM_SETTINGS = settings(max_examples=40)
STANDARD_SETTINGS = settings(max_examples=100)

POWERS = [1, 2, 4, 8]


@st.composite
def bcache_geometries(draw) -> BCacheGeometry:
    line_size = draw(st.sampled_from([16, 32]))
    num_sets = draw(st.sampled_from([8, 16, 32, 64]))
    mapping_factor = draw(st.sampled_from(POWERS))
    associativity = draw(st.sampled_from(POWERS))
    return BCacheGeometry(
        num_sets * line_size,
        line_size,
        mapping_factor=mapping_factor,
        associativity=associativity,
    )


def streams(span_bits: int = 16):
    return st.lists(
        st.tuples(st.integers(0, (1 << span_bits) - 1), st.booleans()),
        max_size=300,
    )


@given(geometry=bcache_geometries(), stream=streams(), seed=st.integers(0, 3))
@STREAM_SETTINGS
def test_good_bcache_never_trips(geometry, stream, seed):
    plain = BCache(geometry, policy="lru", seed=seed)
    wrapped = SanitizedCache(
        BCache(geometry, policy="lru", seed=seed), check_interval=1
    )
    for address, is_write in stream:
        plain.access(address, is_write)
        wrapped.access(address, is_write)
    wrapped.finalize()
    assert wrapped.stats.as_dict() == plain.stats.as_dict()


@given(
    stream=streams(),
    ways=st.sampled_from(POWERS),
    policy=st.sampled_from(["lru", "fifo", "random", "plru"]),
    seed=st.integers(0, 3),
)
@STREAM_SETTINGS
def test_good_set_associative_never_trips(stream, ways, policy, seed):
    wrapped = SanitizedCache(
        SetAssociativeCache(1024, 32, ways=ways, policy=policy, seed=seed),
        check_interval=1,
    )
    for address, is_write in stream:
        wrapped.access(address, is_write)
    wrapped.finalize()


@given(stream=streams())
@STREAM_SETTINGS
def test_differential_never_diverges_on_correct_lru_caches(stream):
    for cache in (
        DirectMappedCache(512, 32),
        SetAssociativeCache(512, 32, ways=4),
        FullyAssociativeCache(256, 32),
    ):
        wrapped = SanitizedCache(cache, differential=True, check_interval=1)
        for address, is_write in stream:
            wrapped.access(address, is_write)
        wrapped.finalize()


@given(stream=streams(), geometry=bcache_geometries())
@STREAM_SETTINGS
def test_flushed_cache_is_reusable(stream, geometry):
    wrapped = SanitizedCache(BCache(geometry), check_interval=1)
    for address, is_write in stream:
        wrapped.access(address, is_write)
    wrapped.flush()
    for address, is_write in stream:
        wrapped.access(address, is_write)
    wrapped.finalize()


@given(stream=st.lists(st.integers(0, (1 << 14) - 1), min_size=8, max_size=200))
@STANDARD_SETTINGS
def test_corrupted_set_associative_always_detected(stream):
    cache = SetAssociativeCache(512, 32, ways=2)
    wrapped = SanitizedCache(cache, check_interval=1)
    for address in stream:
        wrapped.access(address)
    # Duplicate a valid tag into its neighbouring way: either the way
    # was empty (making a phantom duplicate) or it held a different
    # block (now a duplicated resident) — both corrupt.
    target = next(
        (i for i, tags in enumerate(cache._tags) if max(tags) >= 0), None
    )
    assume(target is not None)
    valid_way = 0 if cache._tags[target][0] >= 0 else 1
    cache._tags[target][1 - valid_way] = cache._tags[target][valid_way]
    with pytest.raises(SanitizerError):
        wrapped.checker.check_structure()


@given(stream=st.lists(st.integers(0, (1 << 14) - 1), min_size=1, max_size=200))
@STANDARD_SETTINGS
def test_dirty_invalid_line_always_detected(stream):
    cache = DirectMappedCache(512, 32)
    wrapped = SanitizedCache(cache, check_interval=1)
    for address in stream:
        wrapped.access(address)
    cache._tags[0] = -1  # forcibly invalidate without clearing dirty
    cache._dirty[0] = True
    with pytest.raises(SanitizerError):
        wrapped.checker.check_structure()


@given(geometry=bcache_geometries(), stream=streams(span_bits=14))
@STREAM_SETTINGS
def test_corrupted_pd_always_detected(geometry, stream):
    cache = BCache(geometry, seed=1)
    wrapped = SanitizedCache(cache, check_interval=1)
    for address, is_write in stream:
        wrapped.access(address, is_write)
    row = next(
        (
            r
            for r in range(geometry.num_rows)
            if len(cache.decoder._lookup[r]) >= 2
        ),
        None,
    )
    assume(row is not None)
    values = cache.decoder._values[row]
    first, second = [c for c, v in enumerate(values) if v >= 0][:2]
    values[second] = values[first]
    with pytest.raises(SanitizerError):
        wrapped.checker.check_structure()
