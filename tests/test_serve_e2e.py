"""``bcache-serve`` as a real process: ready line, SIGTERM drain
(in-flight work completes, new connections are refused, exit 0),
SIGINT → 130, bind failure → 4, and a small ``bcache-loadgen`` run."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import shm
from repro.engine.runner import SweepJob, execute_job
from repro.serve.client import ServeClient
from repro.serve.server import main as serve_main

SRC = Path(__file__).resolve().parents[1] / "src"


def _env(tmp_path: Path) -> dict[str, str]:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_TRACE_STORE"] = str(tmp_path / "traces")
    return env


def _start_server(tmp_path: Path, *extra: str):
    """Start ``python -m repro.serve`` on a Unix socket; wait for ready."""
    sock_path = tmp_path / "serve.sock"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--unix", str(sock_path),
         "--shards", "1", *extra],
        env=_env(tmp_path),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
    )
    ready = proc.stdout.readline()
    if "ready" not in ready:
        proc.kill()
        pytest.fail(f"server did not come up: {ready!r}")
    return proc, sock_path


def _wait_refused(sock_path: Path, deadline: float = 15.0) -> None:
    """Poll until connecting to ``sock_path`` fails (listener closed)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(str(sock_path))
        except OSError:
            return
        finally:
            sock.close()
        time.sleep(0.05)
    pytest.fail("server kept accepting connections after SIGTERM")


class TestSigtermDrain:
    def test_inflight_completes_new_connections_refused_exit_zero(self, tmp_path):
        proc, sock_path = _start_server(tmp_path)
        job = SweepJob(spec="mf8_bas8", benchmark="gcc", n=250_000,
                       with_kinds=True)
        client = ServeClient.connect(f"unix:{sock_path}", timeout=180)
        outcome: dict = {}

        def issue():
            try:
                outcome["stats"] = client.simulate(job)
            except Exception as exc:  # surfaced via the assert below
                outcome["error"] = exc

        worker = threading.Thread(target=issue)
        worker.start()
        try:
            time.sleep(0.3)  # the simulate is now in flight
            proc.send_signal(signal.SIGTERM)
            _wait_refused(sock_path)
            worker.join(timeout=180)
            assert not worker.is_alive(), "in-flight request never answered"
            assert "error" not in outcome, outcome.get("error")
            assert outcome["stats"].accesses == job.n
            assert proc.wait(timeout=60) == 0
            assert not sock_path.exists()  # socket file cleaned up
            # The drain unlinked every trace segment the pool exported.
            assert shm.leaked_segments() == []
        finally:
            client.close()
            if proc.poll() is None:
                proc.kill()

    def test_sigterm_when_idle_exits_zero(self, tmp_path):
        proc, sock_path = _start_server(tmp_path)
        try:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            assert "drained, exiting" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()


class TestExitCodes:
    def test_sigint_exits_130(self, tmp_path):
        proc, _ = _start_server(tmp_path)
        try:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=60) == 130
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_bind_failure_exits_4(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "s.sock"
        assert serve_main(["--unix", str(missing), "--shards", "1"]) == 4

    def test_port_conflict_exits_4(self, tmp_path):
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        _, port = blocker.getsockname()
        try:
            assert serve_main(["--port", str(port), "--shards", "1"]) == 4
        finally:
            blocker.close()

    def test_bad_shards_exits_2(self):
        assert serve_main(["--shards", "0"]) == 2


class TestLoadgen:
    def test_small_run_zero_errors_and_verified(self, tmp_path):
        proc, sock_path = _start_server(tmp_path)
        out_path = tmp_path / "bench.json"
        try:
            result = subprocess.run(
                [sys.executable, "-m", "repro.serve.loadgen",
                 "--unix", str(sock_path),
                 "--requests", "48", "--clients", "6", "--n", "2000",
                 "--specs", "dm,mf8_bas8", "--benchmarks", "gzip,gcc",
                 "--verify", "--out", str(out_path)],
                env=_env(tmp_path),
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert result.returncode == 0, result.stdout + result.stderr
            report = json.loads(out_path.read_text())
            assert report["completed"] == 48
            assert report["errors"] == 0
            assert report["verified_identical"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            assert shm.leaked_segments() == []
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_served_equals_local_execute_job(self, tmp_path):
        proc, sock_path = _start_server(tmp_path)
        job = SweepJob(spec="dm", benchmark="gzip", n=4000)
        try:
            with ServeClient.connect(f"unix:{sock_path}", timeout=120) as client:
                assert client.simulate(job) == execute_job(job)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
