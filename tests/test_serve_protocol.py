"""The serve wire protocol: framing survives arbitrary chunk boundaries,
rejects oversized frames from the header alone, and distinguishes a
clean hang-up from a torn one."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
    write_frame,
)


class TestEncodeDecode:
    def test_round_trip(self):
        payload = {"op": "simulate", "spec": "mf8_bas8", "n": 20000}
        frame = encode_frame(payload)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_payload(frame[HEADER.size:]) == payload

    def test_encoding_is_canonical(self):
        # sort_keys + tight separators: identical payloads give identical
        # bytes regardless of insertion order.
        assert encode_frame({"a": 1, "b": 2}) == encode_frame({"b": 2, "a": 1})

    def test_oversized_body_rejected_on_encode(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * 64}, max_frame=16)

    def test_non_json_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(b"[1, 2, 3]")


class TestFrameDecoder:
    def test_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame({"op": "status"})) == [{"op": "status"}]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        # The hardest torn-read case: every header and body byte arrives
        # in its own chunk.
        payload = {"op": "simulate", "benchmark": "gcc", "seed": 2006}
        decoder = FrameDecoder()
        collected = []
        for byte in encode_frame(payload):
            collected.extend(decoder.feed(bytes([byte])))
        assert collected == [payload]

    def test_multiple_frames_in_one_chunk(self):
        frames = [{"id": i} for i in range(3)]
        blob = b"".join(encode_frame(f) for f in frames)
        assert FrameDecoder().feed(blob) == frames

    def test_split_across_frame_boundary(self):
        first, second = {"id": 1}, {"id": 2}
        blob = encode_frame(first) + encode_frame(second)
        decoder = FrameDecoder()
        # Cut inside the second frame's header.
        cut = len(encode_frame(first)) + 2
        assert decoder.feed(blob[:cut]) == [first]
        assert decoder.pending_bytes == 2
        assert decoder.feed(blob[cut:]) == [second]

    def test_oversized_header_rejected_before_body(self):
        decoder = FrameDecoder(max_frame=1024)
        with pytest.raises(FrameTooLarge):
            # Only the header arrives; the body never needs to.
            decoder.feed(HEADER.pack(1 << 30))

    def test_default_cap_is_one_mib(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameTooLarge):
            decoder.feed(HEADER.pack(MAX_FRAME_BYTES + 1))


class _SinkWriter:
    """Minimal asyncio-writer stand-in collecting written bytes."""

    def __init__(self) -> None:
        self.data = bytearray()

    def write(self, data: bytes) -> None:
        self.data.extend(data)

    async def drain(self) -> None:
        pass


class TestAsyncStreams:
    def run(self, coro):
        return asyncio.run(coro)

    def test_write_then_read_round_trip(self):
        async def scenario():
            payload = {"op": "sweep", "jobs": [{"spec": "dm"}]}
            writer = _SinkWriter()
            await write_frame(writer, payload)
            reader = asyncio.StreamReader()
            reader.feed_data(bytes(writer.data))
            reader.feed_eof()
            return await read_frame(reader)

        assert self.run(scenario()) == {"op": "sweep", "jobs": [{"spec": "dm"}]}

    def test_clean_eof_returns_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_frame(reader)

        assert self.run(scenario()) is None

    def test_eof_mid_header_is_protocol_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(ProtocolError, match="mid-header"):
            self.run(scenario())

    def test_eof_mid_body_is_protocol_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(HEADER.pack(10) + b"abc")
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(ProtocolError, match="mid-frame"):
            self.run(scenario())

    def test_oversized_frame_rejected_from_header(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(HEADER.pack(1 << 24))
            await read_frame(reader, max_frame=1 << 20)

        with pytest.raises(FrameTooLarge):
            self.run(scenario())
