"""The serve stack in-process: batcher coalescing, shard routing and
restart, and the asyncio server's request/backpressure/drain semantics.

Served statistics must be bit-identical to a direct ``access_trace``
replay — that is the contract that makes ``--connect`` a drop-in."""

from __future__ import annotations

import asyncio

import pytest

from repro.caches import make_cache
from repro.engine.resilience import job_key
from repro.engine.runner import SweepJob, execute_job
from repro.engine.trace_store import default_store
from repro.serve.batcher import MicroBatcher, SimulationError
from repro.serve.client import (
    AsyncServeClient,
    OverloadedError,
    ServeError,
    parse_address,
)
from repro.serve.protocol import HEADER
from repro.serve.server import ServeConfig, SimServer, _job_from_payload, BadRequest
from repro.serve.workers import ShardPool, trace_shard_key

JOB = SweepJob(spec="mf8_bas8", benchmark="gcc", n=3000, with_kinds=True)


# ----------------------------------------------------------------------
# Batcher (deterministic, against a fake pool)
# ----------------------------------------------------------------------
class _FakePool:
    """Records batches; resolves every job with a canned payload."""

    def __init__(self, shards: int = 1, fail: bool = False) -> None:
        self.shards = shards
        self.fail = fail
        self.batches: list[tuple[int, list[SweepJob]]] = []

    def shard_of(self, job: SweepJob) -> int:
        return trace_shard_key(job) % self.shards

    async def run_batch(self, shard_id, jobs):
        self.batches.append((shard_id, list(jobs)))
        if self.fail:
            return [("error", "injected failure") for _ in jobs]
        return [("ok", {"key": job_key(job)}) for job in jobs]


class TestMicroBatcher:
    def test_identical_jobs_share_one_execution(self):
        async def scenario():
            pool = _FakePool()
            batcher = MicroBatcher(pool, window=0.01)
            results = await asyncio.gather(*(batcher.submit(JOB) for _ in range(6)))
            return pool, batcher, results

        pool, batcher, results = asyncio.run(scenario())
        assert len(pool.batches) == 1
        assert len(pool.batches[0][1]) == 1  # one distinct job travelled
        assert all(r == {"key": job_key(JOB)} for r in results)
        assert batcher.metrics.requests == 6
        assert batcher.metrics.coalesced == 5
        assert batcher.metrics.mean_batch_size == 6.0

    def test_max_batch_flushes_without_waiting_for_window(self):
        async def scenario():
            pool = _FakePool()
            # A 10 s window would time the test out if the size trigger
            # did not fire.
            batcher = MicroBatcher(pool, window=10.0, max_batch=2)
            jobs = [
                SweepJob(spec=spec, benchmark="gzip", n=1000)
                for spec in ("dm", "2way")
            ]
            return await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(j) for j in jobs)), timeout=5.0
            )

        assert len(asyncio.run(scenario())) == 2

    def test_worker_error_raises_simulation_error(self):
        async def scenario():
            batcher = MicroBatcher(_FakePool(fail=True), window=0.001)
            await batcher.submit(JOB)

        with pytest.raises(SimulationError, match="injected failure"):
            asyncio.run(scenario())

    def test_drain_flushes_pending(self):
        async def scenario():
            pool = _FakePool()
            batcher = MicroBatcher(pool, window=60.0)
            waiter = asyncio.ensure_future(batcher.submit(JOB))
            await asyncio.sleep(0)  # let submit reach the pending bucket
            assert batcher.pending_jobs == 1
            await batcher.drain()
            return await waiter

        assert asyncio.run(scenario()) == {"key": job_key(JOB)}


# ----------------------------------------------------------------------
# Shard pool
# ----------------------------------------------------------------------
class TestShardPool:
    def test_trace_affinity_ignores_spec(self):
        a = SweepJob(spec="dm", benchmark="gcc", n=5000)
        b = SweepJob(spec="mf8_bas8", benchmark="gcc", n=5000)
        assert trace_shard_key(a) == trace_shard_key(b)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardPool(0)

    def test_batch_matches_execute_job(self):
        job = SweepJob(spec="dm", benchmark="gzip", n=2000)
        with ShardPool(1) as pool:
            [(status, snapshot)] = pool.run_batch_blocking(0, [job])
        assert status == "ok"
        assert snapshot == execute_job(job).snapshot()

    def test_bad_spec_reports_error_not_crash(self):
        job = SweepJob(spec="no_such_spec", benchmark="gzip", n=1000)
        with ShardPool(1) as pool:
            [(status, message)] = pool.run_batch_blocking(0, [job])
            assert status == "error"
            assert "no_such_spec" in message
            # The shard survives a failing job.
            [(status2, _)] = pool.run_batch_blocking(
                0, [SweepJob(spec="dm", benchmark="gzip", n=1000)]
            )
            assert status2 == "ok"

    def test_dead_shard_restarts_and_serves(self):
        job = SweepJob(spec="dm", benchmark="gzip", n=1500)
        with ShardPool(1) as pool:
            pool._shards[0].proc.kill()
            pool._shards[0].proc.join(timeout=10)
            [(status, snapshot)] = pool.run_batch_blocking(0, [job])
            assert status == "ok"
            assert snapshot == execute_job(job).snapshot()
            assert pool.snapshot()[0]["restarts"] >= 1


# ----------------------------------------------------------------------
# The asyncio server, end to end in-process (ephemeral TCP port)
# ----------------------------------------------------------------------
def serve(config: ServeConfig, scenario):
    """Start a server, run ``scenario(server, address)``, drain."""

    async def runner():
        server = SimServer(config)
        await server.start()
        try:
            host, port = server.tcp_address
            return await scenario(server, f"{host}:{port}")
        finally:
            await server.drain()

    return asyncio.run(runner())


def quick_config(**overrides) -> ServeConfig:
    defaults = dict(port=0, shards=1, window=0.01)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestSimServer:
    def test_simulate_bit_identical_to_access_trace(self):
        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                return await client.simulate(JOB)
            finally:
                await client.close()

        served = serve(quick_config(), scenario)
        # Same path as the CLI tools...
        assert served == execute_job(JOB)
        # ...and against the raw batch kernel, not just the runner.
        cache = make_cache(JOB.spec, size=JOB.size, line_size=JOB.line_size)
        addresses, kinds = default_store().accesses(
            JOB.benchmark, JOB.side, JOB.n, JOB.seed
        )
        cache.access_trace(addresses, kinds)
        assert served == cache.stats

    def test_concurrent_clients_coalesce(self):
        async def scenario(server, address):
            clients = [await AsyncServeClient.connect(address) for _ in range(8)]
            try:
                results = await asyncio.gather(
                    *(client.simulate(JOB) for client in clients)
                )
            finally:
                for client in clients:
                    await client.close()
            return results, server.batcher.metrics

        results, metrics = serve(quick_config(), scenario)
        expected = execute_job(JOB)
        assert all(stats == expected for stats in results)
        assert metrics.mean_batch_size > 1.0
        assert metrics.coalesced > 0

    def test_sweep_order_aligned(self):
        jobs = [
            SweepJob(spec=spec, benchmark="gzip", n=1500)
            for spec in ("dm", "2way", "mf8_bas8")
        ]

        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                return await client.sweep(jobs)
            finally:
                await client.close()

        swept = serve(quick_config(shards=2), scenario)
        assert swept == [execute_job(job) for job in jobs]

    def test_status_reports_metrics(self):
        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                await client.simulate(JOB)
                return await client.status()
            finally:
                await client.close()

        status = serve(quick_config(), scenario)
        assert status["server"]["completed"] == 1
        assert status["server"]["inflight_jobs"] == 0
        assert status["batcher"]["requests"] == 1
        assert len(status["shards"]) == 1
        assert status["shards"][0]["alive"]
        # Fleet-coordination fields: a cluster coordinator keys its
        # compatibility and batch sizing off these three.
        assert status["server"]["draining"] is False
        assert status["server"]["protocol_version"] == 1
        assert status["server"]["cpus_usable"] >= 1

    def test_overload_sheds_with_explicit_error(self):
        # Budget of one in-flight job and a long window: the second
        # request deterministically exceeds the budget while the first
        # is still gathering.
        config = quick_config(window=0.3, max_pending=1)

        async def scenario(server, address):
            first = await AsyncServeClient.connect(address)
            second = await AsyncServeClient.connect(address)
            try:
                pending = asyncio.ensure_future(first.simulate(JOB))
                await asyncio.sleep(0.05)  # first job admitted, gathering
                other = SweepJob(spec="dm", benchmark="gzip", n=1000)
                with pytest.raises(OverloadedError):
                    await second.simulate(other)
                stats = await pending
            finally:
                await first.close()
                await second.close()
            return stats, server.metrics.shed

        stats, shed = serve(config, scenario)
        assert stats == execute_job(JOB)
        assert shed == 1

    def test_oversized_sweep_is_shed_whole(self):
        config = quick_config(max_pending=2)
        jobs = [
            SweepJob(spec=spec, benchmark="gzip", n=1000)
            for spec in ("dm", "2way", "4way")
        ]

        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                with pytest.raises(OverloadedError):
                    await client.sweep(jobs)
                return server.admission.inflight
            finally:
                await client.close()

        assert serve(config, scenario) == 0  # nothing leaked into the budget

    def test_bad_requests_are_reported_not_fatal(self):
        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            errors = []
            try:
                for payload in (
                    {"op": "noop"},
                    {"op": "simulate"},  # missing spec/benchmark
                    {"op": "simulate", "spec": "dm", "benchmark": "gzip",
                     "n": 10 ** 9},
                    {"op": "simulate", "spec": "dm", "benchmark": "gzip",
                     "side": "sideways"},
                    {"op": "sweep", "jobs": []},
                    {"op": "sweep", "jobs": ["dm"]},
                ):
                    response = await client.request(payload)
                    assert response["ok"] is False
                    errors.append(response["error"])
                # The connection still works afterwards.
                stats = await client.simulate(JOB)
            finally:
                await client.close()
            return errors, stats

        errors, stats = serve(quick_config(), scenario)
        assert set(errors) == {"bad_request"}
        assert stats == execute_job(JOB)

    def test_request_id_is_echoed(self):
        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                return await client.request({"op": "status", "id": "req-7"})
            finally:
                await client.close()

        assert serve(quick_config(), scenario)["id"] == "req-7"

    def test_oversized_frame_gets_error_then_close(self):
        async def scenario(server, address):
            host, port = address.rsplit(":", 1)
            reader, writer = await asyncio.open_connection(host, int(port))
            writer.write(HEADER.pack(server.config.max_frame + 1))
            await writer.drain()
            from repro.serve.protocol import read_frame

            response = await read_frame(reader)
            eof = await read_frame(reader)
            writer.close()
            return response, eof

        response, eof = serve(quick_config(), scenario)
        assert response["error"] == "frame_too_large"
        assert eof is None  # server closed the connection afterwards

    def test_drain_op_refuses_new_work(self):
        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                response = await client.request({"op": "drain"})
                assert response == {"ok": True, "draining": True}
                await server.wait_stopped()
                with pytest.raises(OSError):
                    await AsyncServeClient.connect(address)
            finally:
                await client.close()
            return server.draining

        assert serve(quick_config(), scenario) is True


class TestServeTelemetry:
    def test_metrics_op_renders_parseable_exposition(self):
        from repro.obs.exposition import CONTENT_TYPE, parse_text

        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                await client.simulate(JOB)
                return await client.request({"op": "metrics"})
            finally:
                await client.close()

        response = serve(quick_config(), scenario)
        assert response["ok"] is True
        assert response["content_type"] == CONTENT_TYPE
        families = parse_text(response["metrics"])
        sizes = families["repro_serve_batch_size"]
        assert sizes.sample_value("repro_serve_batch_size_count") >= 1.0
        assert families["repro_serve_batches_total"].sample_value(shard="0") >= 1.0

    def test_status_sources_restarts_from_registry(self):
        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                server.pool._shards[0].proc.kill()
                server.pool._shards[0].proc.join(timeout=10)
                await client.simulate(JOB)
                return await client.status()
            finally:
                await client.close()

        status = serve(quick_config(), scenario)
        assert status["shards"][0]["restarts"] >= 1
        assert status["server"]["shard_restarts_total"] >= 1
        assert status["shards"][0]["uptime_s"] >= 0.0

    def test_http_metrics_listener(self):
        from repro.obs.exposition import parse_text

        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                await client.simulate(JOB)
            finally:
                await client.close()
            host, port = server.metrics_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw.decode("utf-8")

        raw = serve(quick_config(metrics_port=0), scenario)
        head, _, body = raw.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain; version=0.0.4" in head
        families = parse_text(body)
        assert "repro_serve_batch_size" in families

    def test_http_metrics_unknown_path_is_404(self):
        async def scenario(server, address):
            host, port = server.metrics_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /nope HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw.decode("utf-8")

        raw = serve(quick_config(metrics_port=0), scenario)
        assert raw.startswith("HTTP/1.0 404")

    def test_no_metrics_port_means_no_listener(self):
        async def scenario(server, address):
            return server.metrics_address

        assert serve(quick_config(), scenario) is None


class TestJobValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(BadRequest, match="unknown job field"):
            _job_from_payload({"spec": "dm", "benchmark": "gzip", "turbo": 1})

    def test_combined_side_needs_kinds(self):
        with pytest.raises(BadRequest, match="with_kinds"):
            _job_from_payload(
                {"spec": "dm", "benchmark": "gzip", "side": "combined"}
            )

    def test_valid_payload_builds_job(self):
        job = _job_from_payload({"spec": "dm", "benchmark": "gzip", "n": 500})
        assert job == SweepJob(spec="dm", benchmark="gzip", n=500)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("seed", 1.5),     # would raise CacheKeyError in the batcher
            ("seed", "2006"),
            ("size", None),
            ("size", 0),
            ("line_size", -32),
            ("policy", 7),
            ("with_kinds", "yes"),
            ("n", True),       # bool is not an int for key purposes
        ],
    )
    def test_bad_scalar_types_rejected_up_front(self, field, value):
        # Every job field feeds the canonical cache key, which only
        # admits exact scalars; a lossy value must be a bad_request at
        # the door, not a CacheKeyError mid-pipeline.
        with pytest.raises(BadRequest):
            _job_from_payload(
                {"spec": "dm", "benchmark": "gzip", field: value}
            )


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.1:4006") == ("tcp", ("10.0.0.1", 4006))

    def test_bare_port_defaults_host(self):
        assert parse_address(":4006") == ("tcp", ("127.0.0.1", 4006))

    def test_unix_prefix(self):
        assert parse_address("unix:/tmp/s.sock") == ("unix", "/tmp/s.sock")

    def test_bare_path(self):
        assert parse_address("/tmp/s.sock") == ("unix", "/tmp/s.sock")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_address("not-an-address")
