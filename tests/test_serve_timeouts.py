"""Client deadlines: hung sockets must raise, not block forever.

A tiny in-test TCP listener accepts connections and then goes silent —
the pathological peer every deadline exists for.  The sync and async
clients must both surface ``TimeoutError`` within the configured
deadline, and ``connect_with_backoff`` must retry a refused endpoint
with the engine's deterministic backoff.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.serve.client import AsyncServeClient, ServeClient


class HungServer:
    """Accept connections, read forever, never reply."""

    def __init__(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._accepted: list[socket.socket] = []
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        self._listener.settimeout(0.1)
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except (socket.timeout, OSError):
                continue
            self._accepted.append(conn)

    def close(self) -> None:
        self._stopping.set()
        self._thread.join(timeout=5)
        self._listener.close()
        for conn in self._accepted:
            conn.close()


@pytest.fixture
def hung_server():
    server = HungServer()
    try:
        yield server
    finally:
        server.close()


class TestSyncClientDeadlines:
    def test_request_times_out_on_hung_socket(self, hung_server):
        client = ServeClient.connect(hung_server.address, timeout=0.2)
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            client.request({"op": "status"})
        assert time.monotonic() - start < 5.0
        client.close()

    def test_per_request_override_restores_default(self, hung_server):
        client = ServeClient.connect(hung_server.address, timeout=30.0)
        with pytest.raises(TimeoutError):
            client.request({"op": "status"}, timeout=0.1)
        # The one-shot override must not stick to the connection.
        assert client._sock.gettimeout() == 30.0
        client.close()

    def test_connect_timeout_is_independent_of_read_timeout(self, hung_server):
        client = ServeClient.connect(
            hung_server.address, timeout=15.0, connect_timeout=1.0
        )
        assert client._sock.gettimeout() == 15.0
        client.close()


class TestConnectWithBackoff:
    def test_refused_endpoint_retries_then_raises(self, tmp_path):
        missing = f"unix:{tmp_path}/nobody.sock"
        start = time.monotonic()
        with pytest.raises(OSError):
            ServeClient.connect_with_backoff(
                missing, attempts=3, base_delay=0.01, max_delay=0.02
            )
        # Two backoff sleeps happened between the three attempts.
        assert time.monotonic() - start >= 0.02

    def test_connects_once_endpoint_is_up(self, hung_server):
        client = ServeClient.connect_with_backoff(
            hung_server.address, timeout=5.0, attempts=2, base_delay=0.01
        )
        client.close()

    def test_backoff_schedule_is_deterministic(self, tmp_path):
        """Same seed, same OSError — no wall-clock or pid in the path."""
        missing = f"unix:{tmp_path}/nobody.sock"
        for _ in range(2):
            with pytest.raises(OSError) as excinfo:
                ServeClient.connect_with_backoff(
                    missing, attempts=2, base_delay=0.001, seed=7
                )
            assert excinfo.value.errno is not None


class TestAsyncClientDeadlines:
    def test_request_times_out_on_hung_socket(self, hung_server):
        async def scenario():
            client = await AsyncServeClient.connect(
                hung_server.address, timeout=0.2
            )
            try:
                with pytest.raises((TimeoutError, asyncio.TimeoutError)):
                    await client.request({"op": "status"})
            finally:
                await client.close()

        asyncio.run(scenario())

    def test_per_request_deadline_overrides_connection_default(self, hung_server):
        async def scenario():
            client = await AsyncServeClient.connect(
                hung_server.address, timeout=60.0
            )
            try:
                start = time.monotonic()
                with pytest.raises((TimeoutError, asyncio.TimeoutError)):
                    await client.request({"op": "status"}, timeout=0.1)
                assert time.monotonic() - start < 5.0
            finally:
                await client.close()

        asyncio.run(scenario())

    def test_connect_deadline_on_dead_endpoint(self, tmp_path):
        async def scenario():
            with pytest.raises(OSError):
                await AsyncServeClient.connect(
                    f"unix:{tmp_path}/nobody.sock", connect_timeout=1.0
                )

        asyncio.run(scenario())
