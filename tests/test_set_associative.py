"""Unit tests for the N-way set-associative cache."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.set_associative import SetAssociativeCache


class TestGeometry:
    def test_dimensions(self):
        cache = SetAssociativeCache(16 * 1024, 32, ways=8)
        assert cache.num_sets == 64
        assert cache.ways == 8
        assert cache.index_bits == 6

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(512, 32, ways=0)

    def test_ways_must_divide_blocks(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(512, 32, ways=5)


class TestAssociativityBehaviour:
    def test_two_conflicting_blocks_coexist(self):
        cache = SetAssociativeCache(512, 32, ways=2)
        cache.access(0x0)
        cache.access(0x200)  # same set, different tag
        assert cache.access(0x0).hit
        assert cache.access(0x200).hit

    def test_worked_example_2way(self):
        """Section 2.2: 0,1,8,9 hit in a 2-way cache after warm-up."""
        cache = SetAssociativeCache(8, 1, ways=2)
        hits = [cache.access(a).hit for a in (0, 1, 8, 9, 0, 1, 8, 9)]
        assert hits == [False, False, False, False, True, True, True, True]

    def test_lru_evicts_least_recent(self):
        cache = SetAssociativeCache(512, 32, ways=2, policy="lru")
        cache.access(0x0)
        cache.access(0x200)
        cache.access(0x0)  # refresh 0x0
        result = cache.access(0x400)  # evicts 0x200
        assert result.evicted == 0x200

    def test_eviction_address_reconstruction(self):
        cache = SetAssociativeCache(512, 32, ways=2)
        cache.access(0x1040)
        cache.access(0x2040)
        result = cache.access(0x3040)
        assert result.evicted == 0x1040

    def test_dirty_writeback(self):
        cache = SetAssociativeCache(512, 32, ways=2)
        cache.access(0x0, is_write=True)
        cache.access(0x200)
        result = cache.access(0x400)
        assert result.evicted == 0x0 and result.evicted_dirty

    def test_fifo_policy_differs_from_lru(self):
        lru = SetAssociativeCache(512, 32, ways=2, policy="lru")
        fifo = SetAssociativeCache(512, 32, ways=2, policy="fifo")
        sequence = [0x0, 0x200, 0x0, 0x400, 0x0]
        lru_hits = [lru.access(a).hit for a in sequence]
        fifo_hits = [fifo.access(a).hit for a in sequence]
        # LRU keeps 0x0 (recently touched); FIFO evicts it (oldest fill).
        assert lru_hits[-1] and not fifo_hits[-1]


class TestMonotonicity:
    def test_higher_associativity_never_worse_on_conflict_stream(self):
        """On a pure conflict rotation, miss rate is monotone in ways."""
        import random

        rng = random.Random(9)
        addresses = [rng.choice(range(6)) * 16 * 1024 + 0x40 for _ in range(4000)]
        rates = []
        for ways in (1, 2, 4, 8):
            if ways == 1:
                cache = DirectMappedCache(16 * 1024, 32)
            else:
                cache = SetAssociativeCache(16 * 1024, 32, ways=ways)
            for address in addresses:
                cache.access(address)
            rates.append(cache.miss_rate)
        assert rates == sorted(rates, reverse=True)
        assert rates[-1] < 0.05  # 8-way holds all six conflicting blocks


class TestProbeFlush:
    def test_contains(self):
        cache = SetAssociativeCache(512, 32, ways=4)
        cache.access(0xABC0)
        assert cache.contains(0xABC0)

    def test_flush(self):
        cache = SetAssociativeCache(512, 32, ways=4)
        cache.access(0xABC0)
        cache.flush()
        assert not cache.contains(0xABC0)
        assert cache.stats.accesses == 0

    def test_flush_resets_policy_state(self):
        cache = SetAssociativeCache(512, 32, ways=2)
        cache.access(0x0)
        cache.access(0x200)
        cache.flush()
        cache.access(0x400)
        # After flush the set fills from way 0 again: no eviction.
        assert cache.stats.evictions == 0
