"""Shared-memory trace segments: registry lifecycle and leak gates.

The :class:`~repro.engine.shm.SharedTraceRegistry` owns every exported
segment; workers only attach.  These tests pin the ownership contract:
refcounted release, idempotent force-unlink, zero-copy read-only views,
the store's memory → shared → disk tier order, and — the part chaos
runs assert on — that no ``bcrepro-*`` segment survives a sweep, a
fault-injected worker crash, or a shard-pool shutdown.
"""

from __future__ import annotations

import pytest

from repro.engine import shm
from repro.engine.faultinject import FaultPlan
from repro.engine.resilience import ResilienceConfig, RetryPolicy
from repro.engine.runner import SweepJob, run_sweep
from repro.engine.shm import SharedTraceRegistry, attach_views, trace_key
from repro.engine.trace_store import TraceStore


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces", memory_entries=8)


@pytest.fixture(autouse=True)
def no_leaks_before_or_after():
    assert shm.leaked_segments() == [], "segments leaked by an earlier test"
    yield
    assert shm.leaked_segments() == [], "this test leaked segments"


class TestRegistryLifecycle:
    def test_export_creates_named_segment(self, store):
        with SharedTraceRegistry() as registry:
            name, count = registry.export(store, "gzip", "data", 500, 1, False)
            assert name.startswith(shm.SEGMENT_PREFIX)
            assert count == 500
            assert shm.leaked_segments() == [name]
            assert len(registry) == 1

    def test_export_is_idempotent_per_key(self, store):
        with SharedTraceRegistry() as registry:
            first = registry.export(store, "gzip", "data", 400, 1, False)
            second = registry.export(store, "gzip", "data", 400, 1, False)
            assert first == second
            assert len(registry) == 1

    def test_release_unlinks_at_refcount_zero(self, store):
        registry = SharedTraceRegistry()
        registry.export(store, "gzip", "data", 300, 1, False)
        registry.export(store, "gzip", "data", 300, 1, False)  # refcount 2
        key = trace_key("gzip", "data", 300, 1, False)
        assert registry.release(key) is False  # still referenced
        assert shm.leaked_segments() != []
        assert registry.release(key) is True  # dropped to zero
        assert shm.leaked_segments() == []
        assert registry.release(key) is False  # unknown key now

    def test_unlink_all_is_idempotent(self, store):
        registry = SharedTraceRegistry()
        registry.export(store, "gzip", "data", 300, 1, False)
        registry.export(store, "gcc", "data", 300, 1, False)
        assert registry.unlink_all() == 2
        assert registry.unlink_all() == 0
        assert shm.leaked_segments() == []

    def test_manifest_is_picklable_shape(self, store):
        import pickle

        with SharedTraceRegistry() as registry:
            registry.export(store, "gzip", "data", 200, 1, True)
            manifest = registry.manifest()
            assert pickle.loads(pickle.dumps(manifest)) == manifest
            ((key, (name, count)),) = manifest.items()
            assert key == ("gzip", "data", 200, 1, "acc")
            assert isinstance(name, str) and count >= 200


class TestStaleReaper:
    """SIGKILLed owners cannot unlink; the next engine start must."""

    def _fake_segment(self, pid: int) -> str:
        import pathlib

        name = f"{shm.SEGMENT_PREFIX}-{pid}-1-deadbeef"
        pathlib.Path(shm.SHM_DIR, name).write_bytes(b"\x00" * 64)
        return name

    def _dead_pid(self) -> int:
        import subprocess
        import sys

        # A real dead pid: spawn-and-wait (which reaps) guarantees the
        # pid no longer exists, so os.kill(pid, 0) raises.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_dead_owner_segment_is_reaped(self):
        name = self._fake_segment(self._dead_pid())
        assert shm.leaked_segments() == [name]
        assert shm.reap_stale_segments() == [name]
        assert shm.leaked_segments() == []

    def test_live_owner_segment_survives(self):
        import os
        import pathlib

        name = self._fake_segment(os.getpid())
        try:
            assert shm.reap_stale_segments() == []
            assert shm.leaked_segments() == [name]
        finally:
            pathlib.Path(shm.SHM_DIR, name).unlink()

    def test_registry_init_heals_dead_owner_leftovers(self, store):
        self._fake_segment(self._dead_pid())
        with SharedTraceRegistry() as registry:  # __init__ reaps
            registry.export(store, "gzip", "data", 100, 1, False)
            assert len(shm.leaked_segments()) == 1  # only our own
        assert shm.leaked_segments() == []

    def test_run_sweep_heals_dead_owner_leftovers(self, store):
        self._fake_segment(self._dead_pid())
        stats = run_sweep(
            [SweepJob(spec="dm", benchmark="gzip", n=1000)],
            workers=1,
            store=store,
        )
        assert stats[0].accesses == 1000
        assert shm.leaked_segments() == []

    def test_unparseable_names_left_alone(self):
        import pathlib

        name = f"{shm.SEGMENT_PREFIX}-notapid"
        path = pathlib.Path(shm.SHM_DIR, name)
        path.write_bytes(b"\x00")
        try:
            assert shm.reap_stale_segments() == []
            assert name in shm.leaked_segments()
        finally:
            path.unlink()


class TestAttachViews:
    def test_zero_copy_readonly_columns(self, store):
        with SharedTraceRegistry() as registry:
            name, count = registry.export(store, "gzip", "data", 600, 1, False)
            segment, addresses, kinds = attach_views(name, count, False)
            try:
                assert kinds is None
                assert addresses.format == "Q" and addresses.readonly
                assert list(addresses) == list(
                    store.addresses("gzip", "data", 600, 1)
                )
                with pytest.raises(TypeError):
                    addresses[0] = 1
            finally:
                del addresses
                segment.close()

    def test_kinds_flavour_carries_both_columns(self, store):
        with SharedTraceRegistry() as registry:
            name, count = registry.export(store, "gcc", "data", 400, 2, True)
            segment, addresses, kinds = attach_views(name, count, True)
            try:
                expected_a, expected_k = store.accesses("gcc", "data", 400, 2)
                assert list(addresses) == list(expected_a)
                assert list(kinds) == list(expected_k)
            finally:
                del addresses, kinds
                segment.close()

    def test_vanished_segment_raises(self, store):
        registry = SharedTraceRegistry()
        name, count = registry.export(store, "gzip", "data", 300, 1, False)
        registry.unlink_all()
        with pytest.raises(FileNotFoundError):
            attach_views(name, count, False)


class TestStoreAdoption:
    def test_adopted_manifest_serves_from_shared_tier(self, store, tmp_path):
        with SharedTraceRegistry() as registry:
            registry.export(store, "gzip", "data", 500, 1, False)
            worker = TraceStore(tmp_path / "empty-root")
            worker.adopt_manifest(registry.manifest())
            blob = worker.addresses("gzip", "data", 500, 1)
            assert list(blob) == list(store.addresses("gzip", "data", 500, 1))
            assert worker.shared_hits == 1
            assert worker.disk_hits == 0 and worker.disk_misses == 0
            del blob  # drop the view so the mapping can actually close
            worker.release_shared()

    def test_vanished_segment_falls_back_to_generation(self, store, tmp_path):
        registry = SharedTraceRegistry()
        registry.export(store, "gzip", "data", 300, 1, False)
        manifest = registry.manifest()
        registry.unlink_all()
        worker = TraceStore(tmp_path / "empty-root")
        worker.adopt_manifest(manifest)
        blob = worker.addresses("gzip", "data", 300, 1)
        assert list(blob) == list(store.addresses("gzip", "data", 300, 1))
        assert worker.shared_hits == 0  # shm gone; regenerated instead

    def test_adopting_none_is_a_noop(self, store):
        store.adopt_manifest(None)
        store.adopt_manifest({})
        assert store.shared_hits == 0


class TestSweepLeakGates:
    JOBS = [
        SweepJob(spec=spec, benchmark=benchmark, n=3000)
        for spec in ("dm", "2way")
        for benchmark in ("gzip", "gcc")
    ]

    def test_run_sweep_unlinks_after_pool_exit(self, store):
        serial = run_sweep(self.JOBS, workers=1, store=store)
        parallel = run_sweep(self.JOBS, workers=2, store=store)
        assert parallel == serial
        assert shm.leaked_segments() == []

    def test_faulted_workers_do_not_leak(self, store, tmp_path):
        """SIGKILL-style worker deaths leave cleanup to the parent."""
        plan = FaultPlan.parse("crash@0,flaky@1,corrupt_blob@2")
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            job_timeout=30.0,
        )
        expected = run_sweep(self.JOBS, workers=1, store=store)
        faulted = run_sweep(
            self.JOBS,
            workers=2,
            store=store,
            run_id="shm-chaos",
            run_root=tmp_path / "runs",
            resilience=config,
            fault_plan=plan,
        )
        assert faulted == expected
        assert shm.leaked_segments() == []


class TestShardPoolLeakGate:
    def test_segments_unlinked_after_close(self, store):
        from repro.serve.workers import ShardPool

        job = SweepJob(spec="dm", benchmark="gzip", n=2000)
        with ShardPool(2, store=store) as pool:
            results = pool.run_batch_blocking(pool.shard_of(job), [job])
            assert results[0][0] == "ok"
            assert len(pool._registry) == 1
            assert shm.leaked_segments() != []
        assert shm.leaked_segments() == []

    def test_restarted_shard_gets_manifest_again(self, store):
        from repro.serve.workers import ShardPool

        job = SweepJob(spec="dm", benchmark="gzip", n=2000)
        with ShardPool(1, store=store) as pool:
            pool.run_batch_blocking(0, [job])
            key = trace_key("gzip", "data", 2000, 2006, False)
            assert key in pool._sent_keys[0]
            pool._shards[0].proc.kill()
            pool.run_batch_blocking(0, [job])  # restart + re-send manifest
            assert pool._shards[0].restarts == 1
            assert key in pool._sent_keys[0]
