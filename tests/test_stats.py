"""Unit tests for counters, balance analysis and summaries."""

import pytest

from repro.stats.balance import analyze_balance
from repro.stats.counters import CacheStats
from repro.stats.summary import (
    average_reduction,
    geometric_mean,
    improvement,
    miss_rate_reduction,
)


class TestCacheStats:
    def test_record(self):
        stats = CacheStats(num_sets=4)
        stats.record(0, hit=True, is_write=False)
        stats.record(1, hit=False, is_write=True)
        assert stats.accesses == 2
        assert stats.hits == 1 and stats.misses == 1
        assert stats.reads == 1 and stats.writes == 1
        assert stats.set_hits[0] == 1 and stats.set_misses[1] == 1

    def test_rates_on_empty(self):
        stats = CacheStats(num_sets=1)
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0
        assert stats.pd_hit_rate_during_miss == 0.0

    def test_reset(self):
        stats = CacheStats(num_sets=2)
        stats.record(0, hit=False, is_write=False)
        stats.reset()
        assert stats.accesses == 0
        assert stats.num_sets == 2
        assert stats.set_accesses == [0, 0]

    def test_merge(self):
        a = CacheStats(num_sets=2)
        b = CacheStats(num_sets=2)
        a.record(0, hit=True, is_write=False)
        b.record(1, hit=False, is_write=True)
        b.evictions = 1
        a.merge(b)
        assert a.accesses == 2
        assert a.set_accesses == [1, 1]
        assert a.evictions == 1

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            CacheStats(num_sets=2).merge(CacheStats(num_sets=4))

    def test_pd_hit_rate(self):
        stats = CacheStats(num_sets=1)
        stats.record(0, hit=False, is_write=False)
        stats.record(0, hit=False, is_write=False)
        stats.pd_hit_misses = 1
        stats.pd_miss_misses = 1
        assert stats.pd_hit_rate_during_miss == 0.5


class TestBalance:
    def _stats(self, accesses, hits, misses):
        stats = CacheStats(num_sets=len(accesses))
        stats.set_accesses = list(accesses)
        stats.set_hits = list(hits)
        stats.set_misses = list(misses)
        stats.accesses = sum(accesses)
        stats.hits = sum(hits)
        stats.misses = sum(misses)
        return stats

    def test_uniform_usage_has_no_hot_or_cold_sets(self):
        stats = self._stats([10] * 8, [8] * 8, [2] * 8)
        report = analyze_balance(stats)
        assert report.frequent_hit_sets == 0.0
        assert report.frequent_miss_sets == 0.0
        assert report.less_accessed_sets == 0.0

    def test_concentrated_hits_detected(self):
        # One set has 9x the average hits.
        stats = self._stats([100, 10, 10, 10], [90, 5, 5, 5], [0, 0, 0, 0])
        report = analyze_balance(stats)
        assert report.frequent_hit_sets == pytest.approx(0.25)
        assert report.frequent_hit_share == pytest.approx(90 / 105)

    def test_concentrated_misses_detected(self):
        stats = self._stats([50, 10, 10, 10], [0, 8, 8, 8], [50, 2, 2, 2])
        report = analyze_balance(stats)
        assert report.frequent_miss_sets == pytest.approx(0.25)
        assert report.frequent_miss_share > 0.8

    def test_cold_sets_detected(self):
        stats = self._stats([100, 100, 100, 1], [90] * 3 + [1], [10] * 3 + [0])
        report = analyze_balance(stats)
        assert report.less_accessed_sets == pytest.approx(0.25)

    def test_no_misses_is_safe(self):
        stats = self._stats([10, 10], [10, 10], [0, 0])
        report = analyze_balance(stats)
        assert report.frequent_miss_share == 0.0

    def test_empty_stats_rejected(self):
        with pytest.raises(ValueError):
            analyze_balance(CacheStats(num_sets=0))

    def test_percent_row_order(self):
        stats = self._stats([10] * 4, [8] * 4, [2] * 4)
        row = analyze_balance(stats).as_percent_row()
        assert len(row) == 6
        assert all(value == 0.0 for value in row)


class TestSummary:
    def test_miss_rate_reduction(self):
        assert miss_rate_reduction(0.10, 0.04) == pytest.approx(0.6)

    def test_reduction_of_zero_baseline(self):
        assert miss_rate_reduction(0.0, 0.1) == 0.0

    def test_negative_reduction_when_worse(self):
        assert miss_rate_reduction(0.10, 0.20) == pytest.approx(-1.0)

    def test_improvement(self):
        assert improvement(2.0, 2.2) == pytest.approx(0.1)
        assert improvement(0.0, 1.0) == 0.0

    def test_average_reduction(self):
        assert average_reduction([0.2, 0.4]) == pytest.approx(0.3)
        assert average_reduction([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
