"""Latency percentiles backing the serve benchmark report."""

from __future__ import annotations

import pytest

from repro.stats.latency import LatencyRecorder, percentile


class TestPercentile:
    def test_single_value(self):
        assert percentile([4.2], 99.0) == 4.2

    def test_exact_ranks(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 50.0) == 3.0
        assert percentile(values, 100.0) == 5.0

    def test_linear_interpolation(self):
        # Matches numpy's default estimator on the same sample.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestLatencyRecorder:
    def test_summary_in_milliseconds(self):
        recorder = LatencyRecorder()
        for seconds in (0.001, 0.002, 0.003, 0.010):
            recorder.record(seconds)
        summary = recorder.summary()
        assert len(recorder) == 4
        assert summary.count == 4
        assert summary.mean_ms == pytest.approx(4.0)
        assert summary.p50_ms == pytest.approx(2.5)
        assert summary.max_ms == pytest.approx(10.0)
        assert summary.p99_ms <= summary.max_ms

    def test_as_dict_round_figures(self):
        recorder = LatencyRecorder()
        recorder.record(0.0012345)
        as_dict = recorder.summary().as_dict()
        assert as_dict["count"] == 1
        assert as_dict["mean_ms"] == pytest.approx(1.234, abs=1e-3)

    def test_render_mentions_percentiles(self):
        recorder = LatencyRecorder()
        recorder.record(0.005)
        text = recorder.summary().render()
        assert "p50" in text and "p99" in text

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().summary()
