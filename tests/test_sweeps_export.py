"""Tests for the victim-buffer sweep, §5.2 NPD widths and trace export."""

import pytest

from repro.core.config import BCacheGeometry
from repro.energy.cam import npd_bits_for
from repro.experiments.common import ExperimentScale
from repro.experiments.comparisons import run_victim_sweep
from repro.trace.trace_file import load_trace
from repro.workloads.export import export_suite

TINY = ExperimentScale(data_n=8_000, instr_n=8_000, instructions=4_000)


class TestVictimSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_victim_sweep(
            TINY,
            benchmarks=("equake", "crafty", "gzip"),
            entries=(4, 16, 64, 128),
        )

    def test_monotone_in_entries(self, sweep):
        values = [sweep.data_reduction[n] for n in sweep.entries]
        assert values == sorted(values)

    def test_diminishing_returns_past_the_footprint(self, sweep):
        """Section 6.6 claims returns diminish past 16 entries; the knee
        sits at the conflict working-set size.  SPEC2K's footprints are
        under 16 blocks; our synthetic profiles thrash ~40 blocks, so
        the knee lands at 64 — the *shape* (a knee followed by a
        plateau) is the reproduced property (see EXPERIMENTS.md)."""
        early = sweep.marginal_gain(16, 64)
        late = sweep.marginal_gain(64, 128)
        assert late < early / 3

    def test_render(self, sweep):
        assert "victim16" in sweep.render()


class TestNPDWidths:
    def test_section_52_worked_example(self, headline_geometry):
        """§5.2: data (4 subarrays) NPD = 4 bits, tag (8 subarrays) = 3."""
        assert npd_bits_for(headline_geometry, subarrays=4) == 4
        assert npd_bits_for(headline_geometry, subarrays=8) == 3

    def test_table1_row_consistency(self, headline_geometry):
        """One subarray: NPD = OI - bas_bits = the 6-bit local case."""
        assert npd_bits_for(headline_geometry, subarrays=1) == 6

    def test_too_many_subarrays_rejected(self, headline_geometry):
        with pytest.raises(ValueError):
            npd_bits_for(headline_geometry, subarrays=256)

    def test_uneven_partition_rejected(self):
        geometry = BCacheGeometry(16 * 1024, 32, 8, 8)
        with pytest.raises(ValueError):
            npd_bits_for(geometry, subarrays=3)


class TestTraceExport:
    def test_exports_requested_files(self, tmp_path):
        paths = export_suite(
            tmp_path, benchmarks=("gzip",), n=200, sides=("data", "instr")
        )
        assert len(paths) == 2
        assert (tmp_path / "gzip.data.din").exists()
        assert (tmp_path / "gzip.instr.din").exists()

    def test_round_trip(self, tmp_path):
        (path,) = export_suite(tmp_path, benchmarks=("mcf",), n=100, sides=("data",))
        trace = load_trace(path)
        assert len(trace) == 100

    def test_binary_format(self, tmp_path):
        (path,) = export_suite(
            tmp_path, benchmarks=("art",), n=50, sides=("data",), binary=True
        )
        assert path.suffix == ".trc"
        assert len(load_trace(path)) == 50

    def test_combined_side(self, tmp_path):
        (path,) = export_suite(
            tmp_path, benchmarks=("gzip",), n=100, sides=("combined",)
        )
        trace = load_trace(path)
        assert sum(1 for a in trace if a.is_instruction) == 100

    def test_invalid_side(self, tmp_path):
        with pytest.raises(ValueError):
            export_suite(tmp_path, benchmarks=("gzip",), n=10, sides=("code",))

    def test_deterministic(self, tmp_path):
        a = export_suite(tmp_path / "a", benchmarks=("vpr",), n=80, sides=("data",))
        b = export_suite(tmp_path / "b", benchmarks=("vpr",), n=80, sides=("data",))
        assert a[0].read_bytes() == b[0].read_bytes()
