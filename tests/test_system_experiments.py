"""Integration tests for the system-level experiments (Figs 8/9, Tab 7)
and the experiment/CLI plumbing."""

import pytest

from repro.experiments import comparisons, perf_energy, tab7_balance
from repro.experiments.circuit_tables import run_tab1, run_tab2, run_tab3
from repro.experiments.common import ExperimentScale, run_system
from repro.experiments.fig3_mf_sweep import run as run_fig3
from repro.experiments.missrate_figures import run_panel
from repro.experiments.reporting import format_table, percent

TINY = ExperimentScale(data_n=12_000, instr_n=15_000, instructions=8_000, seed=2006)


class TestRunSystem:
    def test_returns_execution_result(self):
        result = run_system("dm", "gzip", TINY)
        assert result.instructions == TINY.instructions
        assert 0 < result.ipc < 4.0

    def test_bcache_ipc_at_least_baseline_on_conflict_benchmark(self):
        base = run_system("dm", "equake", TINY)
        bcache = run_system("mf8_bas8", "equake", TINY)
        assert bcache.ipc > base.ipc

    def test_victim_buffer_extra_cycle_charged(self):
        result = run_system("victim16", "wupwise", TINY)
        hierarchy = result.hierarchy
        assert hierarchy.l1d.slow_hits > 0


class TestFig89:
    @pytest.fixture(scope="class")
    def result(self):
        return perf_energy.run(
            TINY,
            benchmarks=("equake", "gzip", "mcf"),
            specs=("dm", "8way", "mf8_bas8", "victim16"),
        )

    def test_average_ipc_improvement_positive(self, result):
        assert result.average_ipc_improvement("mf8_bas8") > 0.0

    def test_bcache_close_to_8way_ipc(self, result):
        """Section 6.1: B-Cache within a hair of the 8-way cache."""
        gap = result.average_ipc_improvement("8way") - result.average_ipc_improvement(
            "mf8_bas8"
        )
        assert gap < 0.05

    def test_bcache_above_victim_buffer_ipc(self, result):
        assert result.average_ipc_improvement("mf8_bas8") >= result.average_ipc_improvement(
            "victim16"
        )

    def test_equake_sees_largest_gain(self, result):
        gains = {
            b: result.ipc_improvement("mf8_bas8", b) for b in result.benchmarks
        }
        assert max(gains, key=gains.get) == "equake"

    def test_bcache_saves_energy_vs_baseline(self, result):
        """Figure 9: B-Cache averages below 1.0 (2% saving in paper)."""
        assert result.average_normalized_energy("mf8_bas8") < 1.0

    def test_8way_burns_more_energy_than_bcache(self, result):
        assert result.average_normalized_energy(
            "8way"
        ) > result.average_normalized_energy("mf8_bas8")

    def test_renders(self, result):
        text = result.render()
        assert "Figure 8" in text and "Figure 9" in text
        assert "equake" in text


class TestTab7:
    @pytest.fixture(scope="class")
    def result(self):
        return tab7_balance.run(TINY, benchmarks=("equake", "mcf", "ammp"))

    def test_miss_concentration_collapses(self, result):
        """The B-Cache's whole point: conflict misses de-concentrate.
        Intensity = (share of misses) / (share of sets): how many times
        the uniform rate the frequent-miss sets absorb.  equake's
        baseline concentrates its conflicts in a handful of sets; the
        B-Cache spreads them across the clusters."""
        row = next(r for r in result.rows if r.benchmark == "equake")

        def intensity(report):
            if report.frequent_miss_sets == 0:
                return 0.0
            return report.frequent_miss_share / report.frequent_miss_sets

        assert intensity(row.bcache) < intensity(row.baseline) / 3

    def test_mcf_has_no_frequent_miss_concentration(self, result):
        row = next(r for r in result.rows if r.benchmark == "mcf")
        assert row.baseline.frequent_miss_share < 0.2

    def test_less_accessed_sets_shrink_on_average(self, result):
        base_ave, bc_ave = result.averages()
        assert bc_ave.less_accessed_sets <= base_ave.less_accessed_sets + 0.02

    def test_renders(self, result):
        assert "Table 7" in result.render()


class TestFig3:
    def test_sweep_runs_and_renders(self):
        result = run_fig3(TINY, mapping_factors=(2, 8, 64, 512))
        assert len(result.points) == 4
        assert "Figure 3" in result.render()

    def test_miss_rate_falls_across_sweep(self):
        result = run_fig3(TINY, mapping_factors=(8, 512))
        assert result.miss_rates()[1] < result.miss_rates()[0]


class TestPanels:
    def test_panel_structure(self):
        panel = run_panel(("gzip", "mcf"), "data", TINY, specs=("2way", "mf8_bas8"))
        assert panel.benchmarks == ("gzip", "mcf")
        assert 0 <= panel.average("2way") <= 1
        text = panel.render()
        assert "gzip" in text and "Ave" in text


class TestComparisons:
    def test_hac_close_to_bcache(self):
        result = comparisons.run_hac(
            ExperimentScale(data_n=8_000, instr_n=8_000, instructions=4_000)
        )
        assert result.hac_cam_bits == 26
        assert result.bcache_pd_bits == 6
        assert "HAC" in result.render()

    def test_replacement_lru_at_least_random(self):
        result = comparisons.run_replacement_ablation(
            ExperimentScale(data_n=8_000, instr_n=8_000, instructions=4_000),
            benchmarks=("equake", "crafty"),
            policies=("lru", "random"),
        )
        assert result.data_reduction["lru"] >= result.data_reduction["random"] - 0.02


class TestCircuitTables:
    def test_tab1(self):
        result = run_tab1()
        assert result.all_have_slack
        assert "Table 1" in result.render()

    def test_tab2(self):
        result = run_tab2()
        assert result.overhead == pytest.approx(0.043, abs=0.002)
        assert "4.3" in result.render()

    def test_tab3(self):
        result = run_tab3()
        assert result.overhead == pytest.approx(0.105, abs=0.005)
        assert result.bcache_below(8) > 0.6
        assert "Table 3" in result.render()


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 3.25)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.5" in text and "3.2" in text

    def test_percent(self):
        assert percent(0.125) == "12.5%"


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "tab7" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["nope"]) == 2

    def test_runs_tab2(self, capsys):
        from repro.cli import main

        assert main(["tab2", "--scale", "smoke"]) == 0
        assert "Table 2" in capsys.readouterr().out
