"""Tests for the 3C miss classifier and decomposition experiment."""

import random

import pytest

from repro.caches import make_cache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.experiments.common import ExperimentScale
from repro.experiments.miss_decomposition import run as run_decomposition
from repro.stats.three_c import classify_misses

TINY = ExperimentScale(data_n=10_000, instr_n=10_000, instructions=5_000, seed=2006)


class TestClassifier:
    def test_cold_misses_are_compulsory(self):
        cache = DirectMappedCache(512, 32)
        breakdown = classify_misses(cache, [i * 32 for i in range(8)])
        assert breakdown.compulsory == 8
        assert breakdown.capacity == 0
        assert breakdown.conflict == 0

    def test_pure_conflict_stream(self):
        """Two blocks thrashing one set of a big cache: all conflict."""
        cache = DirectMappedCache(16 * 1024, 32)
        addresses = [0x40, 0x40 + 16 * 1024] * 50
        breakdown = classify_misses(cache, addresses)
        assert breakdown.compulsory == 2
        assert breakdown.capacity == 0
        assert breakdown.conflict == 98

    def test_pure_capacity_stream(self):
        """A cyclic scan over 2x the capacity in a FA-equivalent way:
        the direct-mapped cache's repeats are capacity misses."""
        cache = DirectMappedCache(512, 32)  # 16 blocks
        addresses = [i * 32 for i in range(32)] * 4
        breakdown = classify_misses(cache, addresses)
        assert breakdown.compulsory == 32
        assert breakdown.capacity > 0
        assert breakdown.conflict == 0  # scan: DM == FA-LRU here

    def test_totals_match_cache_stats(self):
        rng = random.Random(1)
        cache = DirectMappedCache(512, 32)
        addresses = [rng.randrange(1 << 14) for _ in range(2000)]
        breakdown = classify_misses(cache, addresses)
        assert breakdown.total_misses == cache.stats.misses
        assert breakdown.accesses == cache.stats.accesses

    def test_fraction_helpers(self):
        cache = DirectMappedCache(512, 32)
        breakdown = classify_misses(cache, [0, 0x200, 0, 0x200])
        assert breakdown.fraction("compulsory") + breakdown.fraction(
            "capacity"
        ) + breakdown.fraction("conflict") == pytest.approx(1.0)

    def test_reference_capacity_checked(self):
        cache = DirectMappedCache(512, 32)
        wrong = FullyAssociativeCache(1024, 32)
        with pytest.raises(ValueError):
            classify_misses(cache, [0], reference=wrong)

    def test_empty_trace(self):
        cache = DirectMappedCache(512, 32)
        breakdown = classify_misses(cache, [])
        assert breakdown.miss_rate == 0.0
        assert breakdown.fraction("conflict") == 0.0


class TestDecomposition:
    @pytest.fixture(scope="class")
    def result(self):
        return run_decomposition(TINY, benchmarks=("equake", "mcf"))

    def test_baseline_equake_is_conflict_dominated(self, result):
        assert result.conflict_share("dm", "equake") > 0.5

    def test_bcache_removes_conflict_bucket(self, result):
        dm = result.breakdowns["dm"]["equake"]
        bc = result.breakdowns["mf8_bas8"]["equake"]
        assert bc.conflict < dm.conflict / 2
        # Compulsory misses are untouchable by any organisation.
        assert bc.compulsory == dm.compulsory

    def test_mcf_has_little_conflict_to_remove(self, result):
        assert result.conflict_share("dm", "mcf") < 0.25

    def test_renders(self, result):
        text = result.render()
        assert "conflict %" in text and "equake" in text
