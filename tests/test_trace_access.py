"""Unit tests for repro.trace.access."""

import pytest

from repro.trace.access import (
    ADDRESS_MASK,
    Access,
    AccessType,
    ifetch_access,
    read_access,
    write_access,
)


class TestAccessType:
    def test_values_match_din_format(self):
        assert int(AccessType.READ) == 0
        assert int(AccessType.WRITE) == 1
        assert int(AccessType.IFETCH) == 2

    def test_is_write(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write
        assert not AccessType.IFETCH.is_write

    def test_is_instruction(self):
        assert AccessType.IFETCH.is_instruction
        assert not AccessType.READ.is_instruction


class TestAccess:
    def test_default_kind_is_read(self):
        assert Access(0x1000).kind is AccessType.READ

    def test_address_masked_to_32_bits(self):
        access = Access(ADDRESS_MASK + 5)
        assert access.address == 4

    def test_is_write_property(self):
        assert Access(0, AccessType.WRITE).is_write
        assert not Access(0, AccessType.READ).is_write

    def test_is_instruction_property(self):
        assert Access(0, AccessType.IFETCH).is_instruction
        assert not Access(0, AccessType.WRITE).is_instruction

    def test_block_address_strips_offset(self):
        access = Access(0x1234)
        assert access.block_address(32) == 0x1220
        assert access.block_address(64) == 0x1200

    def test_block_address_identity_for_aligned(self):
        access = Access(0x2000)
        assert access.block_address(32) == 0x2000

    def test_frozen(self):
        access = Access(0x10)
        with pytest.raises(AttributeError):
            access.address = 5  # type: ignore[misc]

    def test_equality(self):
        assert Access(1, AccessType.READ) == Access(1, AccessType.READ)
        assert Access(1, AccessType.READ) != Access(1, AccessType.WRITE)


class TestConvenienceConstructors:
    def test_read(self):
        assert read_access(7).kind is AccessType.READ

    def test_write(self):
        assert write_access(7).kind is AccessType.WRITE

    def test_ifetch(self):
        assert ifetch_access(7).kind is AccessType.IFETCH
