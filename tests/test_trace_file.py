"""Unit tests for trace serialisation (text and binary formats)."""

import io

import pytest

from repro.trace.access import Access, AccessType
from repro.trace.trace_file import (
    TraceFormatError,
    load_trace,
    read_binary_trace,
    read_text_trace,
    save_trace,
    write_binary_trace,
    write_text_trace,
)

SAMPLE = [
    Access(0x1000, AccessType.READ),
    Access(0x2020, AccessType.WRITE),
    Access(0x400100, AccessType.IFETCH),
]


class TestTextFormat:
    def test_round_trip(self):
        buffer = io.StringIO()
        count = write_text_trace(SAMPLE, buffer)
        assert count == 3
        buffer.seek(0)
        assert list(read_text_trace(buffer)) == SAMPLE

    def test_blank_lines_and_comments_skipped(self):
        text = "# header\n\n0 1000\n# mid\n1 2020\n"
        accesses = list(read_text_trace(io.StringIO(text)))
        assert len(accesses) == 2
        assert accesses[0].address == 0x1000

    def test_malformed_field_count(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            list(read_text_trace(io.StringIO("0 1000 extra\n")))

    def test_malformed_kind(self):
        with pytest.raises(TraceFormatError):
            list(read_text_trace(io.StringIO("9 1000\n")))

    def test_malformed_address(self):
        with pytest.raises(TraceFormatError):
            list(read_text_trace(io.StringIO("0 zz\n")))


class TestBinaryFormat:
    def test_round_trip(self):
        buffer = io.BytesIO()
        count = write_binary_trace(SAMPLE, buffer)
        assert count == 3
        buffer.seek(0)
        assert list(read_binary_trace(buffer)) == SAMPLE

    def test_truncated_record(self):
        buffer = io.BytesIO(b"\x00\x01\x02")
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_binary_trace(buffer))

    def test_invalid_kind(self):
        buffer = io.BytesIO(b"\x07\x00\x00\x00\x00")
        with pytest.raises(TraceFormatError, match="invalid access kind"):
            list(read_binary_trace(buffer))

    def test_empty_stream(self):
        assert list(read_binary_trace(io.BytesIO())) == []


class TestFileHelpers:
    def test_save_load_text(self, tmp_path):
        path = tmp_path / "trace.din"
        assert save_trace(SAMPLE, path) == 3
        assert load_trace(path) == SAMPLE

    def test_save_load_binary(self, tmp_path):
        path = tmp_path / "trace.bin"
        assert save_trace(SAMPLE, path) == 3
        assert load_trace(path) == SAMPLE

    def test_text_file_is_human_readable(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(SAMPLE, path)
        content = path.read_text()
        assert "1000" in content and content.count("\n") == 3
