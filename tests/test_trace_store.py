"""Tests for the on-disk trace store."""

from __future__ import annotations

import pytest

from repro.engine.trace_store import (
    CRC_BYTES,
    TraceStore,
    TraceStoreError,
    default_store,
    set_default_store,
)
from repro.workloads.spec2k import get_profile


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces", memory_entries=4)


class TestAddresses:
    def test_matches_profile(self, store):
        blob = store.addresses("gzip", "data", 300, 1)
        assert list(blob) == list(get_profile("gzip").data_addresses(300, 1))

    def test_returns_readonly_u64_view(self, store):
        blob = store.addresses("gcc", "instr", 200, 2)
        assert isinstance(blob, memoryview) and blob.format == "Q"
        assert blob.readonly
        assert len(blob) == 200
        with pytest.raises(TypeError):
            blob[0] = 1  # handing out a mutable cache entry corrupts the LRU

    def test_persists_on_disk(self, store):
        store.addresses("gzip", "data", 250, 1)
        path = store.address_path("gzip", "data", 250, 1)
        assert path.is_file() and path.stat().st_size == 8 * 250 + CRC_BYTES

    def test_second_process_reloads(self, store, tmp_path):
        first = store.addresses("gzip", "data", 250, 1)
        fresh = TraceStore(tmp_path / "traces")  # same root, cold memory
        reloaded = fresh.addresses("gzip", "data", 250, 1)
        assert reloaded == first
        assert fresh.disk_hits == 1 and fresh.disk_misses == 0

    def test_memory_lru_returns_same_backing_object(self, store):
        first = store.addresses("gzip", "data", 100, 1)
        second = store.addresses("gzip", "data", 100, 1)
        assert first.obj is second.obj  # fresh views over one cached blob

    def test_memory_lru_bounded(self, store):
        for seed in range(6):  # memory_entries=4
            store.addresses("gzip", "data", 50, seed)
        assert len(store._memory) == 4

    def test_truncated_blob_regenerates(self, store):
        expected = list(store.addresses("gzip", "data", 200, 1))
        path = store.address_path("gzip", "data", 200, 1)
        path.write_bytes(path.read_bytes()[:-8])  # corrupt: drop a record
        store.clear_memory()
        again = store.addresses("gzip", "data", 200, 1)
        assert list(again) == expected
        assert path.stat().st_size == 8 * 200 + CRC_BYTES

    def test_unknown_side_rejected(self, store):
        with pytest.raises(TraceStoreError, match="side"):
            store.addresses("gzip", "combined", 100, 1)

    def test_different_seeds_differ(self, store):
        assert store.addresses("gzip", "data", 200, 1) != store.addresses(
            "gzip", "data", 200, 2
        )


class TestAccesses:
    def test_pair_shapes(self, store):
        addresses, kinds = store.accesses("gzip", "data", 300, 1)
        assert addresses.format == "Q" and kinds.format == "B"
        assert addresses.readonly and kinds.readonly
        assert len(addresses) == len(kinds) == 300

    def test_matches_profile_stream(self, store):
        addresses, kinds = store.accesses("gcc", "instr", 150, 3)
        expected = list(get_profile("gcc").instruction_trace(150, 3))
        assert list(addresses) == [a.address for a in expected]
        assert list(kinds) == [int(a.kind) for a in expected]

    def test_combined_side_length_from_blob(self, store):
        addresses, kinds = store.accesses("gzip", "combined", 200, 1)
        assert len(addresses) == len(kinds) >= 200  # >= one ifetch per instr
        fresh = TraceStore(store.root)
        again_addresses, again_kinds = fresh.accesses("gzip", "combined", 200, 1)
        assert again_addresses == addresses and again_kinds == kinds
        assert fresh.disk_hits == 1

    def test_stale_pair_regenerates(self, store):
        addresses, kinds = store.accesses("gzip", "data", 100, 1)
        store.kind_path("gzip", "data", 100, 1).write_bytes(b"\x00")  # stale
        store.clear_memory()
        again_addresses, again_kinds = store.accesses("gzip", "data", 100, 1)
        assert again_addresses == addresses and again_kinds == kinds


class TestMaintenance:
    def test_ensure_materialises_without_memory(self, store):
        path = store.ensure("gzip", "data", 120, 1)
        assert path.is_file()
        assert not store._memory  # prewarm must not pin blobs

    def test_ensure_with_kinds(self, store):
        store.ensure("gzip", "data", 120, 1, kinds=True)
        assert store.kind_path("gzip", "data", 120, 1).is_file()

    def test_wipe(self, store):
        store.addresses("gzip", "data", 100, 1)
        store.accesses("gzip", "data", 100, 1)
        assert store.wipe() == 3  # 2 address blobs + 1 kind blob
        assert not any(store.root.iterdir())


class TestCorruptionHardening:
    def test_bitflip_quarantined_and_regenerated(self, store):
        expected = list(store.addresses("gzip", "data", 200, 1))
        path = store.address_path("gzip", "data", 200, 1)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF  # bit rot in the payload; size stays right
        path.write_bytes(bytes(data))
        store.clear_memory()
        again = store.addresses("gzip", "data", 200, 1)
        assert list(again) == expected
        assert store.quarantined == 1
        assert (store.quarantine_root / path.name).is_file()
        # The regenerated blob is clean: a fresh load verifies.
        fresh = TraceStore(store.root)
        assert list(fresh.addresses("gzip", "data", 200, 1)) == expected
        assert fresh.quarantined == 0

    def test_corrupt_footer_quarantined(self, store):
        store.addresses("gzip", "data", 150, 1)
        path = store.address_path("gzip", "data", 150, 1)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # damage the CRC footer itself
        path.write_bytes(bytes(data))
        store.clear_memory()
        assert len(store.addresses("gzip", "data", 150, 1)) == 150
        assert store.quarantined == 1

    def test_truncation_quarantined(self, store):
        expected = list(store.addresses("gzip", "data", 100, 1))
        path = store.address_path("gzip", "data", 100, 1)
        path.write_bytes(path.read_bytes()[:17])  # torn write
        store.clear_memory()
        assert list(store.addresses("gzip", "data", 100, 1)) == expected
        assert store.quarantined == 1

    def test_corrupt_kind_blob_regenerates_pair(self, store):
        addresses, kinds = store.accesses("gzip", "data", 120, 1)
        kind_path = store.kind_path("gzip", "data", 120, 1)
        data = bytearray(kind_path.read_bytes())
        data[0] ^= 0xFF
        kind_path.write_bytes(bytes(data))
        store.clear_memory()
        again_addresses, again_kinds = store.accesses("gzip", "data", 120, 1)
        assert again_addresses == addresses and again_kinds == kinds
        assert store.quarantined >= 1

    def test_missing_blob_regenerates_silently(self, store):
        expected = list(store.addresses("gzip", "data", 80, 1))
        store.address_path("gzip", "data", 80, 1).unlink()
        store.clear_memory()
        assert list(store.addresses("gzip", "data", 80, 1)) == expected
        assert store.quarantined == 0  # absence is not corruption

    def test_wipe_clears_quarantine(self, store):
        store.addresses("gzip", "data", 90, 1)
        path = store.address_path("gzip", "data", 90, 1)
        path.write_bytes(b"garbage")
        store.clear_memory()
        store.addresses("gzip", "data", 90, 1)
        assert (store.quarantine_root).is_dir()
        store.wipe()
        assert not any(store.root.iterdir())

    def test_fsync_escape_hatch_still_writes(self, tmp_path):
        store = TraceStore(tmp_path / "nofsync", fsync=False)
        blob = store.addresses("gzip", "data", 60, 1)
        fresh = TraceStore(tmp_path / "nofsync")
        assert fresh.addresses("gzip", "data", 60, 1) == blob
        assert fresh.disk_hits == 1


class TestDefaultStore:
    def test_set_and_restore(self, tmp_path):
        mine = TraceStore(tmp_path / "mine")
        previous = set_default_store(mine)
        try:
            assert default_store() is mine
        finally:
            set_default_store(previous)
        assert default_store() is previous
