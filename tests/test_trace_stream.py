"""Unit tests for stream utilities."""

import random

import pytest

from repro.trace.access import Access, AccessType
from repro.trace.stream import (
    data_only,
    filter_kind,
    instructions_only,
    interleave,
    offset,
    repeat,
    round_robin,
    take,
)


def _reads(addresses):
    return [Access(a, AccessType.READ) for a in addresses]


class TestTake:
    def test_bounds_stream(self):
        assert len(list(take(_reads(range(10)), 4))) == 4

    def test_short_stream(self):
        assert len(list(take(_reads(range(2)), 10))) == 2


class TestInterleave:
    def test_preserves_all_accesses(self):
        a = _reads(range(0, 5))
        b = _reads(range(100, 105))
        merged = list(interleave([a, b], [1.0, 1.0], random.Random(0)))
        assert sorted(x.address for x in merged) == sorted(
            list(range(5)) + list(range(100, 105))
        )

    def test_weights_bias_selection(self):
        a = _reads([0] * 1000)
        b = _reads([1] * 1000)
        merged = list(take(interleave([a, b], [9.0, 1.0], random.Random(1)), 500))
        share_a = sum(1 for x in merged if x.address == 0) / len(merged)
        assert share_a > 0.8

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            list(interleave([_reads([1])], [1.0, 2.0], random.Random(0)))


class TestRoundRobin:
    def test_alternates(self):
        merged = list(round_robin([_reads([0, 2]), _reads([1, 3])]))
        assert [x.address for x in merged] == [0, 1, 2, 3]

    def test_uneven_streams(self):
        merged = list(round_robin([_reads([0]), _reads([1, 2, 3])]))
        assert sorted(x.address for x in merged) == [0, 1, 2, 3]


class TestFilters:
    def test_filter_kind(self):
        trace = [Access(0, AccessType.READ), Access(1, AccessType.WRITE)]
        assert [a.address for a in filter_kind(trace, AccessType.WRITE)] == [1]

    def test_data_only(self):
        trace = [
            Access(0, AccessType.IFETCH),
            Access(1, AccessType.READ),
            Access(2, AccessType.WRITE),
        ]
        assert [a.address for a in data_only(trace)] == [1, 2]

    def test_instructions_only(self):
        trace = [Access(0, AccessType.IFETCH), Access(1, AccessType.READ)]
        assert [a.address for a in instructions_only(trace)] == [0]


class TestTransforms:
    def test_offset_shifts_addresses(self):
        shifted = list(offset(_reads([10, 20]), 0x100))
        assert [a.address for a in shifted] == [0x10A, 0x114]

    def test_offset_preserves_kind(self):
        shifted = list(offset([Access(0, AccessType.WRITE)], 4))
        assert shifted[0].kind is AccessType.WRITE

    def test_repeat(self):
        doubled = list(repeat(_reads([1, 2]), 3))
        assert [a.address for a in doubled] == [1, 2, 1, 2, 1, 2]
