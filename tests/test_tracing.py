"""Distributed tracing: context propagation, span trees, bcache-trace.

Covers the whole pipeline the waterfall analyzer consumes:

* :mod:`repro.obs.tracectx` — deterministic ids, W3C ``traceparent``
  round-trips, head sampling, the ambient contextvar;
* trace-aware spans and ``emit_raw`` replay in :mod:`repro.obs.events`,
  plus the per-stage helpers in :mod:`repro.obs.instrument`;
* the event log under concurrent multi-process appenders;
* kernel span deltas forwarded out of :class:`ShardPool` workers —
  exactly once, across a forced worker restart;
* :mod:`repro.obs.traceview` reconstruction (completeness, critical
  path, stage attribution, Chrome export, the ``--check`` gate);
* end-to-end waterfalls through a real ``SimServer`` and through the
  HTTP gateway with an external ``traceparent``.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os

import pytest

from repro.engine.runner import SweepJob
from repro.obs import events as obs_events
from repro.obs import instrument as obs_instrument
from repro.obs.events import read_events
from repro.obs.metrics import default_registry
from repro.obs.tracectx import (
    TraceContext,
    current,
    mint_trace_id,
    sampled_for,
    use,
)
from repro.obs.traceview import (
    Span,
    check_traces,
    chrome_trace,
    load_spans,
    render_stage_summary,
    render_waterfall,
    self_times,
    span_from_record,
    stage_summary,
)
from repro.obs.traceview import main as traceview_main
from repro.serve.gateway import Gateway, GatewayConfig
from repro.serve.server import ServeConfig, SimServer
from repro.serve.workers import ShardPool


@pytest.fixture
def events_log(tmp_path):
    path = tmp_path / "events.jsonl"
    obs_events.configure(mode="events", log_path=path)
    return path


# ----------------------------------------------------------------------
# TraceContext
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_mint_is_deterministic(self):
        assert mint_trace_id("gw/1/1") == mint_trace_id("gw/1/1")
        assert mint_trace_id("gw/1/1") != mint_trace_id("gw/1/2")
        a = TraceContext.new("serve/1/1")
        b = TraceContext.new("serve/1/1")
        assert a.trace_id == b.trace_id
        # Span ids fold a per-process ordinal: two mints never collide.
        assert a.span_id != b.span_id

    def test_child_links_to_parent(self):
        parent = TraceContext.new("k")
        child = parent.child("stage.shard")
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id
        assert child.sampled == parent.sampled

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new("k")
        header = ctx.to_traceparent()
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled is True

    def test_traceparent_unsampled_flag(self):
        header = f"00-{'a' * 32}-{'b' * 16}-00"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None and parsed.sampled is False

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-span-01",
            f"00-{'0' * 32}-{'b' * 16}-01",  # zero trace id
            f"00-{'a' * 32}-{'0' * 16}-01",  # zero span id
            f"ff-{'a' * 32}-{'b' * 16}-01",  # unknown version
        ],
    )
    def test_from_traceparent_rejects_junk(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_from_wire_accepts_str_and_mapping(self):
        ctx = TraceContext.new("k")
        wire = ctx.to_wire()
        assert TraceContext.from_wire(wire) is not None
        assert TraceContext.from_wire({"traceparent": wire}) is not None
        assert TraceContext.from_wire(12345) is None
        assert TraceContext.from_wire({"nope": 1}) is None

    def test_sampling_is_deterministic_per_trace_id(self):
        tid = mint_trace_id("k")
        assert sampled_for(tid, 1.0) is True
        assert sampled_for(tid, 0.0) is False
        first = sampled_for(tid, 0.5)
        assert all(sampled_for(tid, 0.5) == first for _ in range(5))

    def test_sample_rate_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.0")
        assert TraceContext.new("k").sampled is False
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "1.0")
        assert TraceContext.new("k").sampled is True

    def test_ambient_context(self):
        assert current() is None
        ctx = TraceContext.new("k")
        with use(ctx):
            assert current() is ctx
        assert current() is None


# ----------------------------------------------------------------------
# Trace-aware spans and replay
# ----------------------------------------------------------------------
class TestTracedSpans:
    def test_span_with_trace_records_ids(self, events_log):
        root = TraceContext.new("k")
        with obs_events.span("serve.request", trace=root) as child:
            assert child is not None
            assert current() is child
        (record,) = read_events(events_log)
        assert record["trace_id"] == root.trace_id
        assert record["span_id"] == child.span_id
        assert record["parent_id"] == root.span_id
        assert record["ok"] is True

    def test_unsampled_trace_emits_nothing(self, events_log):
        root = TraceContext.new("k", rate=0.0)
        with obs_events.span("serve.request", trace=root) as child:
            assert child is None
        assert read_events(events_log) == []

    def test_emit_raw_replays_record(self, events_log):
        record = {"name": "stage.kernel", "t": 1.0, "mono": 2.0,
                  "pid": 1234, "trace_id": "a" * 32, "span_id": "b" * 16,
                  "parent_id": "c" * 16, "dur_s": 0.5, "ok": True}
        obs_events.emit_raw(record)
        obs_events.emit_raw({"no": "name"})  # silently dropped
        (read_back,) = read_events(events_log)
        assert read_back == record

    def test_emit_raw_is_noop_when_off(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs_events.configure(mode="off", log_path=path)
        obs_events.emit_raw({"name": "stage.kernel", "dur_s": 0.1})
        assert not path.exists()

    def test_stage_span_observes_histogram_even_when_off(self, tmp_path):
        obs_events.configure(mode="off", log_path=tmp_path / "e.jsonl")
        with obs_instrument.stage_span("admission") as child:
            assert child is None
        histogram = default_registry().histogram(
            "repro_stage_seconds", "")
        series = histogram.series(stage="admission")
        assert series is not None and series.count == 1

    def test_stage_event_derives_child_record(self, events_log):
        root = TraceContext.new("k")
        obs_instrument.stage_event("batch_window", 0.005, trace=root)
        (record,) = read_events(events_log)
        assert record["name"] == "stage.batch_window"
        assert record["parent_id"] == root.span_id
        assert record["dur_s"] == 0.005

    def test_stage_record_for_uses_given_context(self, events_log):
        ctx = TraceContext.new("k").child("stage.shard")
        record = obs_instrument.stage_record_for("shard", ctx, 0.25)
        assert record["span_id"] == ctx.span_id
        assert record["parent_id"] == ctx.parent_id
        assert record["dur_s"] == 0.25


# ----------------------------------------------------------------------
# Satellite: the event log under concurrent multi-process appenders
# ----------------------------------------------------------------------
def _append_events(path, writer_id: int, count: int) -> None:
    """Child-process body: a private EventLog appending to one file."""
    obs_events.reset()
    obs_events.configure(mode="events", log_path=path)
    for seq in range(count):
        obs_events.emit("concurrency.probe", writer=writer_id, seq=seq)


class TestConcurrentAppenders:
    WRITERS = 4
    EVENTS = 200

    def test_interleaved_writers_lose_nothing(self, events_log):
        procs = [
            multiprocessing.Process(
                target=_append_events, args=(events_log, i, self.EVENTS)
            )
            for i in range(self.WRITERS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        records = read_events(events_log)
        assert len(records) == self.WRITERS * self.EVENTS
        # Every line parsed back whole: no torn or interleaved writes.
        by_writer: dict[int, set[int]] = {}
        for record in records:
            assert record["name"] == "concurrency.probe"
            by_writer.setdefault(record["writer"], set()).add(record["seq"])
        assert by_writer == {
            i: set(range(self.EVENTS)) for i in range(self.WRITERS)
        }


# ----------------------------------------------------------------------
# Satellite: kernel span deltas across a worker restart
# ----------------------------------------------------------------------
class TestWorkerSpanDeltas:
    JOBS = [
        SweepJob(spec="dm", benchmark="gzip", n=1500),
        SweepJob(spec="dm", benchmark="gcc", n=1500),
    ]

    @staticmethod
    def _traces() -> list[str]:
        return [
            TraceContext.new(f"test/{i}").child("stage.shard").to_wire()
            for i in range(len(TestWorkerSpanDeltas.JOBS))
        ]

    def _kernel_records(self, path):
        return [r for r in read_events(path) if r["name"] == "stage.kernel"]

    def test_exactly_one_kernel_span_per_traced_job(self, events_log):
        traces = self._traces()
        with ShardPool(1) as pool:
            results = pool.run_batch_blocking(0, self.JOBS, traces)
        assert [status for status, _ in results] == ["ok", "ok"]
        records = self._kernel_records(events_log)
        assert len(records) == len(self.JOBS)
        wanted = {TraceContext.from_wire(w).span_id for w in traces}
        assert {r["parent_id"] for r in records} == wanted
        # The records were built worker-side: a different pid.
        assert all(r["pid"] != os.getpid() for r in records)

    def test_no_drop_or_double_merge_across_restart(self, events_log):
        traces = self._traces()
        with ShardPool(1) as pool:
            pool.run_batch_blocking(0, self.JOBS, traces)
            assert len(self._kernel_records(events_log)) == len(self.JOBS)
            pool._shards[0].proc.kill()
            pool._shards[0].proc.join(timeout=10)
            results = pool.run_batch_blocking(0, self.JOBS, traces)
            assert [status for status, _ in results] == ["ok", "ok"]
            assert pool.snapshot()[0]["restarts"] >= 1
        # Exactly one more record per traced job: the retried batch
        # merged the answering attempt's spans, never both.
        assert len(self._kernel_records(events_log)) == 2 * len(self.JOBS)

    def test_untraced_batch_produces_no_spans(self, events_log):
        with ShardPool(1) as pool:
            pool.run_batch_blocking(0, self.JOBS)
        assert self._kernel_records(events_log) == []


# ----------------------------------------------------------------------
# traceview reconstruction on synthetic records
# ----------------------------------------------------------------------
def _record(name, trace_id, span_id, parent_id, start, dur, **attrs):
    return {"name": name, "t": start + dur, "mono": start + dur,
            "pid": 42, "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "dur_s": dur, "ok": True, **attrs}


def _write_log(path, records):
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


#: One complete trace: gateway -> request -> {admission, shard->kernel}.
#: Every top-level span hangs off the unrecorded root "r" * 16.
COMPLETE = [
    _record("stage.gateway", "a" * 32, "01" * 8, "r" * 16, 0.0, 1.0,
            stage="gateway"),
    _record("stage.serve_request", "a" * 32, "02" * 8, "01" * 8, 0.1, 0.8,
            stage="serve_request"),
    _record("stage.admission", "a" * 32, "03" * 8, "02" * 8, 0.1, 0.1,
            stage="admission"),
    _record("stage.shard", "a" * 32, "04" * 8, "02" * 8, 0.3, 0.6,
            stage="shard"),
    _record("stage.kernel", "a" * 32, "05" * 8, "04" * 8, 0.35, 0.5,
            stage="kernel"),
]


class TestTraceview:
    def test_span_from_record_skips_untraced(self):
        assert span_from_record({"name": "job.done", "t": 1.0}) is None
        span = span_from_record(COMPLETE[0])
        assert isinstance(span, Span)
        assert span.start == 0.0 and span.end == 1.0
        assert span.stage == "gateway"

    def test_complete_single_rooted_tree(self, tmp_path):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        traces = load_spans([log])
        assert set(traces) == {"a" * 32}
        trace = traces["a" * 32]
        assert trace.is_complete()
        assert trace.unresolved_parents() == {"r" * 16}
        assert len(trace.roots()) == 1

    def test_shared_virtual_root_is_complete(self, tmp_path):
        # Two top-level spans, both children of the unrecorded root:
        # the direct-serve shape (serve_request + serialize).
        records = COMPLETE + [
            _record("stage.serialize", "a" * 32, "06" * 8, "r" * 16,
                    0.9, 0.05, stage="serialize"),
        ]
        log = tmp_path / "a.jsonl"
        _write_log(log, records)
        trace = load_spans([log])["a" * 32]
        assert len(trace.roots()) == 2
        assert trace.is_complete()

    def test_distinct_dangling_parents_incomplete(self, tmp_path):
        records = COMPLETE + [
            _record("stage.serialize", "a" * 32, "06" * 8, "x" * 16,
                    0.9, 0.05, stage="serialize"),
        ]
        log = tmp_path / "a.jsonl"
        _write_log(log, records)
        trace = load_spans([log])["a" * 32]
        assert not trace.is_complete()

    def test_multi_log_merge_stitches_processes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_log(a, COMPLETE[:2])
        _write_log(b, COMPLETE[2:])
        traces = load_spans([a, b])
        assert traces["a" * 32].is_complete()
        assert len(traces["a" * 32].spans) == len(COMPLETE)

    def test_critical_path_follows_latest_ending_chain(self, tmp_path):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        trace = load_spans([log])["a" * 32]
        path = trace.critical_path()
        # gateway -> serve_request -> shard -> kernel (not admission).
        assert path == {"01" * 8, "02" * 8, "04" * 8, "05" * 8}

    def test_waterfall_renders_all_spans(self, tmp_path):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        trace = load_spans([log])["a" * 32]
        text = render_waterfall(trace)
        assert "trace " + "a" * 32 in text
        for record in COMPLETE:
            assert record["name"] in text
        assert "*" in text  # critical-path marker

    def test_stage_summary_self_time_attribution(self, tmp_path):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        traces = load_spans([log])
        table = stage_summary(traces)
        assert set(table) == {
            "gateway", "serve_request", "admission", "shard", "kernel"
        }
        # kernel has no children: self == total.
        assert table["kernel"].self_total == pytest.approx(0.5)
        # shard's self time excludes the kernel below it.
        assert table["shard"].self_total == pytest.approx(0.1)
        # Self times sum to the root's duration (full attribution).
        total_self = sum(s.self_total for s in table.values())
        assert total_self == pytest.approx(1.0)
        text = render_stage_summary(table)
        assert "kernel" in text and "self" in text

    def test_chrome_trace_export_shape(self, tmp_path):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        document = chrome_trace(load_spans([log]))
        events = document["traceEvents"]
        assert len(events) == len(COMPLETE)
        kernel = next(e for e in events if e["name"] == "stage.kernel")
        assert kernel["ph"] == "X"
        assert kernel["dur"] == pytest.approx(0.5e6)
        assert kernel["args"]["trace_id"] == "a" * 32

    def test_check_traces_threshold(self, tmp_path):
        log = tmp_path / "a.jsonl"
        broken = _record("stage.orphan", "b" * 32, "0a" * 8, "y" * 16,
                         0.0, 0.1)
        lonely = _record("stage.orphan2", "b" * 32, "0b" * 8, "z" * 16,
                         0.0, 0.1)
        _write_log(log, COMPLETE + [broken, lonely])
        traces = load_spans([log])
        ok, report = check_traces(traces, threshold=0.99)
        assert not ok and "1/2" in report
        ok, _ = check_traces(traces, threshold=0.5)
        assert ok
        assert check_traces({}, threshold=0.5) == (
            False, "bcache-trace --check: no traces found"
        )


class TestTraceviewCli:
    def test_waterfall_and_slowest(self, tmp_path, capsys):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        assert traceview_main([str(log), "--slowest", "1"]) == 0
        out = capsys.readouterr().out
        assert "stage.kernel" in out

    def test_stage_summary_flag(self, tmp_path, capsys):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        assert traceview_main([str(log), "--stage-summary"]) == 0
        assert "serve_request" in capsys.readouterr().out

    def test_check_exit_codes(self, tmp_path, capsys):
        log = tmp_path / "a.jsonl"
        _write_log(log, COMPLETE)
        assert traceview_main([str(log), "--check"]) == 0
        _write_log(log, [_record("stage.o", "b" * 32, "0a" * 8, "y" * 16,
                                 0.0, 0.1),
                         _record("stage.p", "b" * 32, "0b" * 8, "z" * 16,
                                 0.0, 0.1)])
        assert traceview_main([str(log), "--check"]) == 1
        capsys.readouterr()

    def test_export_writes_chrome_json(self, tmp_path, capsys):
        log = tmp_path / "a.jsonl"
        out_file = tmp_path / "chrome.json"
        _write_log(log, COMPLETE)
        assert traceview_main(
            [str(log), "--export", str(out_file), "--check"]
        ) == 0
        document = json.loads(out_file.read_text(encoding="utf-8"))
        assert len(document["traceEvents"]) == len(COMPLETE)
        capsys.readouterr()

    def test_missing_log_is_an_error(self, tmp_path, capsys):
        assert traceview_main([str(tmp_path / "nope.jsonl")]) == 2
        capsys.readouterr()

    def test_empty_log_no_check_fails(self, tmp_path, capsys):
        log = tmp_path / "a.jsonl"
        log.write_text("", encoding="utf-8")
        assert traceview_main([str(log)]) == 1
        capsys.readouterr()


# ----------------------------------------------------------------------
# End to end: SimServer waterfall, gateway traceparent
# ----------------------------------------------------------------------
JOB_PAYLOAD = {"spec": "mf8_bas8", "benchmark": "gcc", "n": 3000}


def _serve(config: ServeConfig, scenario):
    async def runner():
        server = SimServer(config)
        await server.start()
        try:
            host, port = server.tcp_address
            return await scenario(server, f"{host}:{port}")
        finally:
            await server.drain()

    return asyncio.run(runner())


class TestEndToEndWaterfall:
    def test_serve_request_yields_complete_waterfall(
        self, events_log, tmp_path
    ):
        from repro.serve.client import AsyncServeClient

        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                return await client.simulate(SweepJob(**JOB_PAYLOAD))
            finally:
                await client.close()

        config = ServeConfig(
            port=0, shards=1, window=0.01,
            result_cache=str(tmp_path / "cache"),
        )
        stats = _serve(config, scenario)
        assert stats.accesses > 0
        traces = load_spans([events_log])
        assert len(traces) == 1
        (trace,) = traces.values()
        assert trace.is_complete()
        stages = {span.stage for span in trace.spans.values()}
        assert stages >= {
            "serve_request", "admission", "resultcache", "singleflight",
            "batch_window", "shard", "kernel", "serialize",
        }
        # Per-stage attribution: self times cannot exceed the trace's
        # end-to-end window (the 5% slack covers clock rounding).
        total_self = sum(self_times(trace).values())
        assert total_self <= trace.duration * 1.05
        # The kernel span really ran in the worker process.
        kernel = next(s for s in trace.spans.values()
                      if s.stage == "kernel")
        assert kernel.pid != os.getpid()

    def test_gateway_honors_external_traceparent(self, events_log):
        incoming = TraceContext.new("external/client/1")

        async def runner():
            server = SimServer(ServeConfig(port=0, shards=1, window=0.01))
            await server.start()
            host, port = server.tcp_address
            gateway = Gateway(GatewayConfig(
                port=0, backend=f"{host}:{port}",
            ))
            await gateway.start()
            try:
                reader, writer = await asyncio.open_connection(
                    *gateway.address
                )
                body = json.dumps(JOB_PAYLOAD).encode()
                head = (
                    "POST /v1/simulate HTTP/1.1\r\nHost: t\r\n"
                    "Connection: close\r\n"
                    f"traceparent: {incoming.to_traceparent()}\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                )
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                return raw
            finally:
                await gateway.drain()
                await server.drain()

        raw = asyncio.run(runner())
        assert b" 200 " in raw.split(b"\r\n", 1)[0]
        traces = load_spans([events_log])
        # The externally-supplied id is the trace's identity.
        assert set(traces) == {incoming.trace_id}
        trace = traces[incoming.trace_id]
        assert trace.is_complete()
        assert trace.unresolved_parents() == {incoming.span_id}
        stages = {span.stage for span in trace.spans.values()}
        assert stages >= {
            "gateway", "gateway_parse", "serve_request", "admission",
            "batch_window", "shard", "kernel", "serialize",
        }

    def test_off_tier_stays_byte_identical(self, tmp_path):
        from repro.serve.client import AsyncServeClient

        async def scenario(server, address):
            client = await AsyncServeClient.connect(address)
            try:
                return await client.simulate(SweepJob(**JOB_PAYLOAD))
            finally:
                await client.close()

        path = tmp_path / "events.jsonl"
        obs_events.configure(mode="off", log_path=path)
        baseline = _serve(
            ServeConfig(port=0, shards=1, window=0.01), scenario
        )
        assert not path.exists()  # no spans, no log, no trace fields
        obs_events.configure(mode="events", log_path=path)
        traced = _serve(
            ServeConfig(port=0, shards=1, window=0.01), scenario
        )
        assert baseline.snapshot() == traced.snapshot()
