"""Unit tests for the direct-mapped cache + victim buffer (Jouppi)."""

import pytest

from repro.caches.victim import VictimBufferCache


@pytest.fixture
def cache() -> VictimBufferCache:
    return VictimBufferCache(512, 32, victim_entries=4)


class TestSwapSemantics:
    def test_buffer_catches_conflict_victim(self, cache):
        cache.access(0x0)
        cache.access(0x200)  # evicts 0x0 into the buffer
        result = cache.access(0x0)  # buffer hit: swap back
        assert result.hit
        assert cache.victim_hits == 1

    def test_swap_restores_one_cycle_hits(self, cache):
        cache.access(0x0)
        cache.access(0x200)
        cache.access(0x0)  # swap
        cache.access(0x0)  # now a main-cache hit
        assert cache.main_hits == 1
        assert cache.victim_hits == 1

    def test_displaced_block_enters_buffer_on_swap(self, cache):
        cache.access(0x0)
        cache.access(0x200)
        cache.access(0x0)  # 0x200 displaced into buffer
        assert cache.access(0x200).hit  # buffer hit again

    def test_thrashing_pair_all_hits_after_warmup(self, cache):
        """The buffer turns a 2-tag DM thrash into hits (paper Sec 2.1)."""
        for address in (0x0, 0x200):
            cache.access(address)
        hits = [cache.access(a).hit for a in (0x0, 0x200) * 4]
        assert all(hits)

    def test_dirty_bit_preserved_through_swap(self, cache):
        cache.access(0x0, is_write=True)
        cache.access(0x200)  # dirty 0x0 -> buffer
        cache.access(0x0)  # swap back, still dirty
        cache.access(0x200)  # 0x0 -> buffer again (dirty)
        # Push 4 more victims through the buffer to evict dirty 0x0.
        for i in range(2, 7):
            cache.access(i * 0x200)
            cache.access(0x20 * i)  # unrelated sets, no buffer traffic
        assert cache.stats.writebacks >= 1


class TestBufferCapacity:
    def test_lru_eviction_from_buffer(self, cache):
        # Fill buffer with victims of sets 0..4 (5 victims > 4 entries).
        for i in range(6):
            cache.access(i * 0x20)
            cache.access(i * 0x20 + 0x200)
        # The oldest victim (0x0) fell out of the 4-entry buffer.
        assert not cache.access(0x0).hit

    def test_buffer_hit_fraction(self, cache):
        cache.access(0x0)
        cache.access(0x200)
        cache.access(0x0)
        assert cache.victim_hit_fraction == pytest.approx(1.0)

    def test_entries_bound(self):
        with pytest.raises(ValueError):
            VictimBufferCache(512, 32, victim_entries=0)


class TestAccounting:
    def test_swap_is_not_a_miss(self, cache):
        cache.access(0x0)
        cache.access(0x200)
        cache.access(0x0)
        assert cache.stats.misses == 2  # the two cold misses only

    def test_swaps_do_not_write_back(self, cache):
        cache.access(0x0, is_write=True)
        cache.access(0x200)
        result = cache.access(0x0)  # swap of a dirty block
        assert result.evicted is None

    def test_probe_sees_buffer_contents(self, cache):
        cache.access(0x0)
        cache.access(0x200)
        assert cache.contains(0x0)

    def test_flush(self, cache):
        cache.access(0x0)
        cache.access(0x200)
        cache.flush()
        assert not cache.contains(0x0)
        assert cache.victim_hits == 0
