"""Unit tests for component synthesis and the SPEC2K profiles."""

import itertools

import pytest

from repro.trace.access import AccessType
from repro.workloads.spec2k import (
    ALL_BENCHMARKS,
    CFP2K,
    CINT2K,
    QUIET_ICACHE,
    REPORTED_ICACHE,
    SPEC2K,
    get_profile,
)
from repro.workloads.synthesis import (
    BASELINE_WAY_SIZE,
    Component,
    build_address_stream,
    calls,
    capacity,
    conflict,
    hot,
    loop,
)


class TestComponent:
    def test_valid_kinds(self):
        Component("zipf", 1.0, {"region": 1024, "alpha": 1.0})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown component kind"):
            Component("magic", 1.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            Component("zipf", 0.0)

    def test_conflict_constructor(self):
        component = conflict(0.1, degree=4, tag_share_bits=3)
        assert component.params["stride"] == BASELINE_WAY_SIZE * 8
        assert component.params["degree"] == 4

    def test_conflict_set_region_bounds(self):
        with pytest.raises(ValueError):
            conflict(0.1, degree=4, set_region=16)

    def test_capacity_kinds(self):
        for kind in ("scan", "random", "chase"):
            assert capacity(0.1, 64, kind).kind == kind
        with pytest.raises(ValueError):
            capacity(0.1, 64, "stream")

    def test_calls_constructor(self):
        component = calls(0.1, functions=5, tag_share_bits=1)
        assert component.params["stride"] == BASELINE_WAY_SIZE * 2


class TestBuildStream:
    def test_deterministic(self):
        components = (hot(0.9, 4), conflict(0.1, degree=2))
        a = build_address_stream(components, seed=3)
        b = build_address_stream(components, seed=3)
        assert list(itertools.islice(a, 200)) == list(itertools.islice(b, 200))

    def test_seed_changes_stream(self):
        components = (hot(0.9, 4), conflict(0.1, degree=2))
        a = list(itertools.islice(build_address_stream(components, seed=3), 200))
        b = list(itertools.islice(build_address_stream(components, seed=4), 200))
        assert a != b

    def test_components_in_disjoint_slots(self):
        components = (hot(0.5, 4), capacity(0.5, 64, "scan"))
        addresses = list(itertools.islice(build_address_stream(components, 0), 2000))
        slots = {a >> 25 for a in addresses}
        assert len(slots) == 2

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            build_address_stream((), seed=0)


class TestProfiles:
    def test_all_26_benchmarks_present(self):
        assert len(SPEC2K) == 26
        assert len(CINT2K) == 12
        assert len(CFP2K) == 14

    def test_suite_partition(self):
        assert set(CINT2K) | set(CFP2K) == set(ALL_BENCHMARKS)
        assert not set(CINT2K) & set(CFP2K)

    def test_icache_partition_matches_paper(self):
        """Section 4.2's list of eleven quiet benchmarks."""
        assert len(QUIET_ICACHE) == 11
        assert len(REPORTED_ICACHE) == 15
        assert set(QUIET_ICACHE) | set(REPORTED_ICACHE) == set(ALL_BENCHMARKS)

    def test_get_profile(self):
        assert get_profile("equake").suite == "CFP2K"
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("doom")

    def test_every_profile_has_notes(self):
        for profile in SPEC2K.values():
            assert profile.notes, profile.name

    def test_validation(self):
        import dataclasses

        profile = SPEC2K["gzip"]
        with pytest.raises(ValueError):
            dataclasses.replace(profile, suite="SPEC2006")
        with pytest.raises(ValueError):
            dataclasses.replace(profile, write_fraction=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(profile, mem_ratio=0.0)


class TestTraces:
    def test_data_trace_kinds_and_length(self):
        trace = list(SPEC2K["gzip"].data_trace(500, seed=1))
        assert len(trace) == 500
        kinds = {a.kind for a in trace}
        assert kinds <= {AccessType.READ, AccessType.WRITE}
        write_share = sum(a.is_write for a in trace) / len(trace)
        assert 0.15 < write_share < 0.45

    def test_instruction_trace_is_all_ifetch(self):
        trace = list(SPEC2K["gcc"].instruction_trace(300, seed=1))
        assert all(a.kind is AccessType.IFETCH for a in trace)

    def test_combined_trace_structure(self):
        trace = list(SPEC2K["mcf"].combined_trace(1000, seed=1))
        ifetches = [a for a in trace if a.is_instruction]
        data = [a for a in trace if not a.is_instruction]
        assert len(ifetches) == 1000
        ratio = len(data) / len(ifetches)
        assert 0.2 < ratio < 0.5  # ~mem_ratio

    def test_traces_deterministic(self):
        a = list(SPEC2K["art"].data_trace(300, seed=9))
        b = list(SPEC2K["art"].data_trace(300, seed=9))
        assert a == b

    def test_fast_path_matches_trace_addresses(self):
        profile = SPEC2K["twolf"]
        fast = profile.data_addresses(200, seed=5)
        slow = [a.address for a in profile.data_trace(200, seed=5)]
        assert fast == slow

    def test_code_and_data_segments_disjoint(self):
        profile = SPEC2K["vortex"]
        code = set(profile.instr_addresses(300, seed=0))
        data = set(profile.data_addresses(300, seed=0))
        assert not code & data
