"""Tests for the write-policy wrapper and the sensitivity sweeps."""

import pytest

from repro.caches import make_cache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.write_policy import WritePolicyCache
from repro.experiments.common import ExperimentScale
from repro.experiments.sensitivity import run_cache_size, run_line_size

TINY = ExperimentScale(data_n=6_000, instr_n=6_000, instructions=3_000)


class TestWriteThrough:
    def test_writes_propagate_immediately(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_through=True)
        cache.access(0x40, is_write=True)
        cache.access(0x40, is_write=True)
        assert cache.writethroughs == 2

    def test_lines_never_dirty(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_through=True)
        cache.access(0x40, is_write=True)
        result = cache.access(0x40 + 512)  # evicts the written line
        assert result.evicted is not None and not result.evicted_dirty
        assert cache.inner.stats.writebacks == 0

    def test_write_traffic_accounts_everything(self):
        wb = WritePolicyCache(DirectMappedCache(512, 32), write_through=False)
        wt = WritePolicyCache(DirectMappedCache(512, 32), write_through=True)
        for cache in (wb, wt):
            cache.access(0x40, is_write=True)
            cache.access(0x40 + 512)
        assert wb.write_traffic == 1  # one writeback at eviction
        assert wt.write_traffic == 1  # one write-through at the store

    def test_reads_unaffected(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_through=True)
        cache.access(0x40)
        assert cache.access(0x40).hit
        assert cache.writethroughs == 0


class TestWriteNoAllocate:
    def test_write_miss_does_not_fill(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_allocate=False)
        cache.access(0x40, is_write=True)
        assert not cache.contains(0x40)
        assert cache.writethroughs == 1

    def test_write_hit_still_updates(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_allocate=False)
        cache.access(0x40)  # read allocates
        result = cache.access(0x40, is_write=True)
        assert result.hit

    def test_read_miss_allocates(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_allocate=False)
        cache.access(0x40)
        assert cache.contains(0x40)

    def test_stats_count_bypassed_writes_as_misses(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_allocate=False)
        cache.access(0x40, is_write=True)
        assert cache.stats.misses == 1

    def test_combined_wt_wna(self):
        cache = WritePolicyCache(
            DirectMappedCache(512, 32), write_allocate=False, write_through=True
        )
        cache.access(0x40, is_write=True)   # bypass
        cache.access(0x40)                   # read fill
        cache.access(0x40, is_write=True)   # write-through hit
        assert cache.writethroughs == 2
        assert cache.write_traffic == 2


class TestWrapperPlumbing:
    def test_wraps_any_organisation(self):
        cache = WritePolicyCache(make_cache("mf8_bas8"), write_through=True)
        for i in range(100):
            cache.access(i * 64, is_write=(i % 3 == 0))
        assert cache.stats.accesses == 100

    def test_flush(self):
        cache = WritePolicyCache(DirectMappedCache(512, 32), write_through=True)
        cache.access(0x40, is_write=True)
        cache.flush()
        assert cache.writethroughs == 0
        assert not cache.contains(0x40)

    def test_name_encodes_policy(self):
        wt = WritePolicyCache(DirectMappedCache(512, 32), write_through=True)
        wna = WritePolicyCache(DirectMappedCache(512, 32), write_allocate=False)
        assert "WT" in wt.name
        assert "WNA" in wna.name


class TestSensitivitySweeps:
    def test_line_size_sweep(self):
        result = run_line_size(TINY, benchmarks=("equake", "gzip"))
        assert [p.label for p in result.points] == ["16B", "32B", "64B"]
        # The B-Cache's advantage holds at every line size.
        for point in result.points:
            assert point.reductions["mf8_bas8"] > 0.1
        assert "line size" in result.render()

    def test_cache_size_sweep(self):
        result = run_cache_size(
            TINY, sizes=(8, 16, 32), benchmarks=("equake", "gzip")
        )
        # Baseline miss rate falls with capacity.
        rates = [p.baseline_miss_rate for p in result.points]
        assert rates == sorted(rates, reverse=True)
        # B-Cache reduction positive at all capacities.
        assert all(r > 0.1 for r in result.reduction_series("mf8_bas8"))

    def test_series_accessor(self):
        result = run_line_size(TINY, line_sizes=(32,), benchmarks=("gzip",))
        series = result.reduction_series("8way")
        assert len(series) == 1
